"""Deterministic RNG management for synthetic workload generation.

Every generator takes an explicit ``numpy.random.Generator``; fleets spawn
independent child streams per volume via ``SeedSequence.spawn`` so that
(a) a fleet is reproducible from one seed and (b) changing one volume's
parameters never perturbs another volume's randomness.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator from an integer seed."""
    return np.random.default_rng(np.random.SeedSequence(seed))


def spawn_rngs(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` statistically independent generators derived from one seed."""
    if n < 0:
        raise ValueError("n must be non-negative")
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]
