"""Synthetic workload generation: arrival, size, and address models,
application archetypes, and calibrated AliCloud-/MSRC-like fleets."""

from .address import (
    AddressModel,
    CircularLog,
    MixtureAddress,
    SequentialRuns,
    UniformRandom,
    ZipfHotspot,
)
from .alicloud import alicloud_scale, make_alicloud_fleet
from .archetypes import (
    ALICLOUD_ARCHETYPES,
    MSRC_ARCHETYPES,
    Scale,
    backup_writer,
    database,
    kv_store,
    log_writer,
    msrc_log_server,
    msrc_project_server,
    msrc_source_control,
    virtual_desktop,
    web_server,
)
from .arrival import (
    ArrivalProcess,
    DailyBatch,
    DiurnalArrivals,
    JitteredRegular,
    MicroBurst,
    OnOffArrivals,
    PoissonArrivals,
    Superpose,
)
from .distributions import ZipfSampler, bounded_lognormal, categorical
from .fleet import FleetSpec, build_fleet
from .msrc import make_msrc_fleet, msrc_scale
from .rng import make_rng, spawn_rngs
from .sizes import ChoiceSizes, FixedSize, LognormalSizes, SizeModel, small_request_mix
from .twin import TwinParameters, fit_twin, twin_spec
from .volume_model import VolumeSpec, generate_volume

__all__ = [
    "make_rng",
    "spawn_rngs",
    "ZipfSampler",
    "bounded_lognormal",
    "categorical",
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffArrivals",
    "DiurnalArrivals",
    "JitteredRegular",
    "Superpose",
    "DailyBatch",
    "MicroBurst",
    "SizeModel",
    "FixedSize",
    "ChoiceSizes",
    "LognormalSizes",
    "small_request_mix",
    "AddressModel",
    "UniformRandom",
    "ZipfHotspot",
    "SequentialRuns",
    "CircularLog",
    "MixtureAddress",
    "VolumeSpec",
    "generate_volume",
    "Scale",
    "log_writer",
    "backup_writer",
    "database",
    "kv_store",
    "web_server",
    "virtual_desktop",
    "msrc_project_server",
    "msrc_log_server",
    "msrc_source_control",
    "ALICLOUD_ARCHETYPES",
    "MSRC_ARCHETYPES",
    "FleetSpec",
    "build_fleet",
    "TwinParameters",
    "fit_twin",
    "twin_spec",
    "make_alicloud_fleet",
    "alicloud_scale",
    "make_msrc_fleet",
    "msrc_scale",
]
