"""Synthetic-twin fitting: model a volume from an observed trace.

Closes the loop between analysis and generation: given a real (or
synthetic) volume trace, estimate the generative parameters — arrival
rate, write fraction, per-op size mixtures, working-set sizes, and Zipf
skew — and build a :class:`~repro.synth.volume_model.VolumeSpec` whose
generated trace matches the original's headline profile.  This is how a
practitioner turns one month of production traces into a reusable,
shareable workload model (no raw data leaves the house).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.hotspots import fit_zipf, ranked_block_traffic
from ..trace.blocks import block_events
from ..trace.dataset import VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE
from .address import UniformRandom, ZipfHotspot
from .arrival import JitteredRegular, MicroBurst, PoissonArrivals
from .sizes import ChoiceSizes
from .volume_model import VolumeSpec

__all__ = ["TwinParameters", "fit_twin", "twin_spec"]

GIB = 1024**3


@dataclass(frozen=True)
class TwinParameters:
    """Estimated generative parameters of one volume."""

    volume_id: str
    rate: float
    write_fraction: float
    read_sizes: Optional[ChoiceSizes]
    write_sizes: Optional[ChoiceSizes]
    read_wss_blocks: int
    write_wss_blocks: int
    #: blocks touched by both reads and writes (mixed blocks)
    overlap_blocks: int
    read_zipf_s: float
    write_zipf_s: float
    micro_burst_fraction: float

    @property
    def is_write_dominant(self) -> bool:
        return self.write_fraction > 0.5


def _size_mixture(sizes: np.ndarray) -> Optional[ChoiceSizes]:
    """Empirical size distribution as a categorical mixture (top 12 sizes,
    remainder folded into the nearest kept size)."""
    if len(sizes) == 0:
        return None
    values, counts = np.unique(sizes, return_counts=True)
    if len(values) > 12:
        keep = np.argsort(counts)[::-1][:12]
        kept_values = values[keep]
        # Reassign dropped mass to the nearest kept size.
        weights = np.zeros(len(kept_values), dtype=np.float64)
        for v, c in zip(values, counts):
            weights[np.argmin(np.abs(kept_values - v))] += c
        values, counts = kept_values, weights
    order = np.argsort(values)
    return ChoiceSizes(values[order].tolist(), counts[order].tolist())


def _zipf_exponent(trace: VolumeTrace, op: str, block_size: int) -> float:
    try:
        ranked = ranked_block_traffic(trace, op, block_size)
        fit = fit_zipf(ranked)
        return float(np.clip(fit.s, 0.0, 2.0))
    except ValueError:
        return 0.0


def fit_twin(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> TwinParameters:
    """Estimate the generative parameters of a volume trace."""
    if len(trace) < 10:
        raise ValueError("need at least 10 requests to fit a twin")
    duration = trace.duration
    rate = len(trace) / duration if duration > 0 else float(len(trace))
    gaps = np.diff(trace.timestamps)
    micro = float(np.mean(gaps < 1e-3)) if len(gaps) else 0.0
    ev = block_events(trace, block_size)
    read_set = np.unique(ev.block_id[~ev.is_write])
    write_set = np.unique(ev.block_id[ev.is_write])
    read_blocks = len(read_set)
    write_blocks = len(write_set)
    total_blocks = len(np.unique(ev.block_id))
    overlap = read_blocks + write_blocks - total_blocks
    return TwinParameters(
        volume_id=trace.volume_id,
        rate=rate,
        write_fraction=trace.n_writes / len(trace),
        read_sizes=_size_mixture(trace.sizes[~trace.is_write]),
        write_sizes=_size_mixture(trace.sizes[trace.is_write]),
        read_wss_blocks=read_blocks,
        write_wss_blocks=write_blocks,
        overlap_blocks=overlap,
        read_zipf_s=_zipf_exponent(trace, "read", block_size),
        write_zipf_s=_zipf_exponent(trace, "write", block_size),
        micro_burst_fraction=micro,
    )


def twin_spec(
    params: TwinParameters,
    volume_id: Optional[str] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 0,
) -> VolumeSpec:
    """Build a generative :class:`VolumeSpec` from fitted parameters.

    The twin reproduces the original's rate, op mix, size mixtures,
    working-set sizes, popularity skew, and micro-burst share; generate
    it over any window with :func:`~repro.synth.volume_model.generate_volume`.
    """
    fallback = ChoiceSizes([4096], [1.0])
    read_sizes = params.read_sizes or fallback
    write_sizes = params.write_sizes or fallback

    def address_model(n_blocks: int, s: float, region_start: int, seed_offset: int):
        n_blocks = max(n_blocks, 16)
        region = n_blocks * block_size * 4
        if s > 0.1:
            return (
                ZipfHotspot(
                    n_blocks, region, region_start=region_start, s=s,
                    seed=seed + seed_offset,
                ),
                region,
            )
        return UniformRandom(region, region_start=region_start), region

    write_addr, write_region = address_model(params.write_wss_blocks, params.write_zipf_s, 0, 1)
    # Reads split between their own territory and the written region, in
    # proportion to the observed working-set overlap (mixed blocks drive
    # the original's update coverage and RAW/WAR transitions).
    own_read_blocks = max(params.read_wss_blocks - params.overlap_blocks, 16)
    read_own, read_region = address_model(own_read_blocks, params.read_zipf_s, write_region, 2)
    if params.overlap_blocks > 0 and params.read_wss_blocks > 0:
        shared_blocks = min(max(params.overlap_blocks, 16), max(params.write_wss_blocks, 16))
        read_shared, _ = address_model(shared_blocks, params.read_zipf_s, 0, 3)
        overlap_frac = min(params.overlap_blocks / params.read_wss_blocks, 1.0)
        from .address import MixtureAddress

        read_addr = MixtureAddress([read_own, read_shared], [1 - overlap_frac + 1e-9, overlap_frac])
    else:
        read_addr = read_own
    if params.micro_burst_fraction > 0.05:
        # Followers-per-arrival budget E = f/(1-f) reproduces the observed
        # sub-ms gap share f.  MicroBurst emits burst_prob*(1+mean_extra)
        # followers per base arrival on average; solve for its parameters
        # and shrink the base rate so the TOTAL rate matches the original.
        followers = min(
            4.0, params.micro_burst_fraction / max(1 - params.micro_burst_fraction, 0.1)
        )
        if followers >= 1.0:
            burst_prob, extra = 0.5, 2 * followers - 1
        else:
            burst_prob, extra = followers * 0.99, 0.01
        base_rate = params.rate / (1 + burst_prob * (1 + extra))
        arrival = MicroBurst(
            PoissonArrivals(base_rate), burst_prob=burst_prob, mean_extra=extra, gap=50e-6
        )
    elif params.rate > 0.5:
        arrival = JitteredRegular(params.rate)
    else:
        arrival = PoissonArrivals(params.rate)
    capacity = max(40 * GIB, (write_region + read_region) * 2)
    return VolumeSpec(
        volume_id=volume_id or f"{params.volume_id}-twin",
        capacity=capacity,
        arrival=arrival,
        write_fraction=params.write_fraction,
        read_sizes=read_sizes,
        write_sizes=write_sizes,
        read_addresses=read_addr,
        write_addresses=write_addr,
    )
