"""Address-space (offset) models.

The spatial findings rest on three ingredients these models provide:

* **Zipfian hotspots** — skewed block popularity over a bounded working
  set (traffic aggregation, Finding 9; re-writes to the same blocks give
  the high update coverage of Finding 11),
* **sequential runs** — consecutive requests advance through the address
  space (low randomness ratio, Finding 8),
* **uniform random** — scattered accesses (high randomness ratio).

Models are stateful per volume: a model instance generates the offsets of
one volume's request stream in order.
"""

from __future__ import annotations

import abc

import numpy as np

from ..trace.record import DEFAULT_BLOCK_SIZE
from .distributions import ZipfSampler

__all__ = [
    "AddressModel",
    "UniformRandom",
    "ZipfHotspot",
    "SequentialRuns",
    "CircularLog",
    "MixtureAddress",
]


class AddressModel(abc.ABC):
    """Generates request start offsets (bytes) for a stream of requests."""

    @abc.abstractmethod
    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        """One int64 offset per request; ``sizes`` gives request lengths so
        models can keep requests inside their region."""


def _check_region(region_start: int, region_size: int) -> None:
    if region_start < 0:
        raise ValueError("region_start must be non-negative")
    if region_size <= 0:
        raise ValueError("region_size must be positive")


class UniformRandom(AddressModel):
    """Offsets uniform over a region, block-aligned."""

    def __init__(
        self, region_size: int, region_start: int = 0, align: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        _check_region(region_start, region_size)
        self.region_start = region_start
        self.region_size = region_size
        self.align = align

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        n = len(sizes)
        span = np.maximum(self.region_size - sizes, self.align)
        slots = span // self.align
        return self.region_start + rng.integers(0, slots, size=n) * self.align


class ZipfHotspot(AddressModel):
    """Zipf-popular blocks of a bounded working set.

    The working set is ``n_blocks`` block-aligned slots inside the region;
    rank-to-slot assignment is a random permutation so popularity is not
    spatially correlated (hot blocks are scattered, keeping the randomness
    ratio realistic).
    """

    def __init__(
        self,
        n_blocks: int,
        region_size: int,
        region_start: int = 0,
        s: float = 1.0,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed: int = 0,
    ) -> None:
        _check_region(region_start, region_size)
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        slots = region_size // block_size
        if slots < n_blocks:
            raise ValueError("region too small for the requested working set")
        self.block_size = block_size
        self.region_start = region_start
        self._zipf = ZipfSampler(n_blocks, s)
        perm_rng = np.random.default_rng(seed)
        self._slot_of_rank = perm_rng.choice(slots, size=n_blocks, replace=False)

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        ranks = self._zipf.sample(rng, len(sizes))
        return self.region_start + self._slot_of_rank[ranks] * self.block_size


class SequentialRuns(AddressModel):
    """Sequential scans with occasional random jumps.

    Each request continues from the previous request's end with
    probability ``1 - jump_prob``; otherwise it jumps to a random
    block-aligned position.  Longer runs mean lower randomness ratios.
    The model is stateful across ``generate`` calls (the scan position
    persists), matching a volume whose workload continues over time.
    """

    def __init__(
        self,
        region_size: int,
        region_start: int = 0,
        jump_prob: float = 0.02,
        align: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        _check_region(region_start, region_size)
        if not 0 <= jump_prob <= 1:
            raise ValueError("jump_prob must be in [0, 1]")
        self.region_start = region_start
        self.region_size = region_size
        self.jump_prob = jump_prob
        self.align = align
        self._pos = region_start

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        n = len(sizes)
        if n == 0:
            return np.array([], dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        jumps = rng.random(n) < self.jump_prob
        jumps[0] = jumps[0] or self._pos >= self.region_start + self.region_size
        max_size = int(sizes.max())
        slots = max(1, (self.region_size - max_size) // self.align)
        jump_targets = self.region_start + rng.integers(0, slots, size=n) * self.align
        # Per-run cumulative advance: offset[i] = run_start + sum of sizes
        # of the earlier requests in the same run.
        cum = np.cumsum(sizes) - sizes  # advance before request i, globally
        run_id = np.cumsum(jumps)  # 0 for the leading continuation run
        # Run start positions: previous position for run 0, jump targets after.
        run_starts = np.concatenate([[self._pos], jump_targets[jumps]])
        # Advance accumulated before each run began.
        run_base = np.concatenate([[0], cum[jumps]])
        out = run_starts[run_id] + (cum - run_base[run_id])
        # Wrap runs that would walk past the region end (rare; keeps the
        # scan inside the region without a per-request loop).
        end = self.region_start + self.region_size
        over = out + sizes > end
        if over.any():
            span = max(self.region_size - max_size, self.align)
            out[over] = self.region_start + (out[over] - self.region_start) % span
        self._pos = int(out[-1] + sizes[-1])
        return out


class CircularLog(AddressModel):
    """Append-only log wrapping around a bounded region.

    Models journaling/logging volumes: writes are sequential, and once the
    region wraps every block is re-written — update coverage approaches
    100% (the write-only, high-update-coverage population of AliCloud).
    """

    def __init__(self, region_size: int, region_start: int = 0) -> None:
        _check_region(region_start, region_size)
        self.region_start = region_start
        self.region_size = region_size
        self._cursor = 0

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        n = len(sizes)
        if n == 0:
            return np.array([], dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        max_size = int(sizes.max())
        # Wrap on a span that always fits the largest request, so the
        # append cursor advances modulo the log without a per-request loop.
        span = max(self.region_size - max_size, 1)
        cum = self._cursor + np.cumsum(sizes) - sizes
        out = self.region_start + cum % span
        self._cursor = int((cum[-1] + sizes[-1]) % span)
        return out


class MixtureAddress(AddressModel):
    """Chooses a sub-model per request with fixed probabilities."""

    def __init__(self, models, weights) -> None:
        if len(models) != len(weights) or not models:
            raise ValueError("models and weights must be equal-length and non-empty")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with a positive sum")
        self.models = list(models)
        self.weights = w / w.sum()

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        n = len(sizes)
        choice = rng.choice(len(self.models), size=n, p=self.weights)
        out = np.empty(n, dtype=np.int64)
        for k, model in enumerate(self.models):
            mask = choice == k
            if mask.any():
                out[mask] = model.generate(rng, sizes[mask])
        return out
