"""AliCloud-like synthetic fleet.

Stands in for the production traces the paper collected from Alibaba
Cloud (1,000 volumes over 31 days).  The defaults are scaled down for
laptop-sized analysis while preserving the paper's qualitative marginals:
write dominance (overall W:R ~3:1, >90% of volumes write-dominant, ~42%
nearly write-only), small requests, a short-lived volume population
(~15.7% single-day), diverse burstiness, high randomness ratios, high
update coverage, and WAW-dominated temporal patterns.
"""

from __future__ import annotations

from ..trace.dataset import TraceDataset
from .archetypes import ALICLOUD_ARCHETYPES, Scale
from .fleet import FleetSpec, build_fleet

__all__ = ["make_alicloud_fleet", "alicloud_scale"]

#: Fraction of volumes active on only one day (paper: 15.7%).
SHORT_LIVED_FRACTION = 0.157


def alicloud_scale(n_days: int = 31, day_seconds: float = 240.0) -> Scale:
    """Default AliCloud-side scale: 31 compressed days.

    ``day_seconds=240`` keeps the default fleet in the low millions of
    requests; raise it (up to 86400 for real time) for higher fidelity.
    """
    return Scale(n_days=n_days, day_seconds=day_seconds)


def make_alicloud_fleet(
    n_volumes: int = 100,
    seed: int = 0,
    scale: Scale = None,
    name: str = "AliCloud-synth",
) -> TraceDataset:
    """Generate the AliCloud-side synthetic fleet.

    Args:
        n_volumes: number of volumes (paper: 1,000; default scaled to 100).
        seed: fleet seed; the fleet is a pure function of its arguments.
        scale: time scaling; defaults to :func:`alicloud_scale`.
        name: dataset name.
    """
    spec = FleetSpec(
        name=name,
        archetypes=ALICLOUD_ARCHETYPES,
        n_volumes=n_volumes,
        scale=scale or alicloud_scale(),
        short_lived_fraction=SHORT_LIVED_FRACTION,
        volume_prefix="ali",
    )
    return build_fleet(spec, seed=seed)
