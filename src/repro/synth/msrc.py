"""MSRC-like synthetic fleet.

Stands in for the Microsoft Research Cambridge traces (36 volumes over 7
days, Feb 2007) as characterized by the paper's MSRC-side numbers:
read-dominant overall (W:R ~0.42:1) yet ~half of volumes write-dominant,
reads covering ~98% of the working set, all volumes active every day,
lower randomness ratios, weak write aggregation (mixed blocks), low update
coverage, and a bimodal update-interval pattern driven by a daily
source-control batch (``src1_0``).
"""

from __future__ import annotations

from ..trace.dataset import TraceDataset
from .archetypes import MSRC_ARCHETYPES, Scale, msrc_source_control
from .fleet import FleetSpec, build_fleet

__all__ = ["make_msrc_fleet", "msrc_scale"]


def msrc_scale(n_days: int = 7, day_seconds: float = 240.0) -> Scale:
    """Default MSRC-side scale: 7 compressed days (same day length as the
    AliCloud-side default so cross-trace time comparisons stay aligned)."""
    return Scale(n_days=n_days, day_seconds=day_seconds)


def make_msrc_fleet(
    n_volumes: int = 36,
    seed: int = 1,
    scale: Scale = None,
    name: str = "MSRC-synth",
) -> TraceDataset:
    """Generate the MSRC-side synthetic fleet.

    One volume is always the daily-batch source-control server; the rest
    split between read-heavy project servers and write-dominant log disks.
    MSRC volumes are never short-lived (the paper: all 36 volumes active
    all 7 days).
    """
    spec = FleetSpec(
        name=name,
        archetypes=MSRC_ARCHETYPES,
        n_volumes=n_volumes,
        scale=scale or msrc_scale(),
        short_lived_fraction=0.0,
        # Underscore suffix keeps ids in MSRC's hostname_disk form
        # (msrc_0, msrc_1, ...), so write_msrc can serialize the fleet.
        volume_prefix="msrc_",
    )
    return build_fleet(spec, seed=seed, extra_specs=[msrc_source_control])
