"""Sampling primitives used by the workload models."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["ZipfSampler", "bounded_lognormal", "categorical"]


class ZipfSampler:
    """Bounded Zipfian sampler over ranks ``0 .. n-1``.

    ``P(rank k) ∝ (k + 1) ** -s``.  Skewed block popularity in storage
    workloads is classically Zipf-like; ``s`` around 1 gives the hot-spot
    aggregation the paper's Finding 9 reports.  Sampling is by inverse CDF
    (binary search over the cumulative weights), so draws are O(log n).
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if s < 0:
            raise ValueError("s must be non-negative")
        self.n = n
        self.s = s
        weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` ranks (int64, 0-based)."""
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def pmf(self, rank: int) -> float:
        """Probability of a given rank."""
        if not 0 <= rank < self.n:
            raise ValueError("rank out of range")
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lo)


def bounded_lognormal(
    rng: np.random.Generator,
    size: int,
    median: float,
    sigma: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> np.ndarray:
    """Lognormal draws parameterized by their median, clipped to [lo, hi].

    Heavy-tailed per-volume parameters (arrival rates, working-set sizes)
    are drawn from lognormals; the median parameterization keeps fleet
    calibration direct (paper reports medians).
    """
    if median <= 0:
        raise ValueError("median must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    draws = rng.lognormal(mean=np.log(median), sigma=sigma, size=size)
    if lo is not None or hi is not None:
        draws = np.clip(draws, lo, hi)
    return draws


def categorical(rng: np.random.Generator, probabilities: Sequence[float], size: int) -> np.ndarray:
    """Draw category indices with the given probabilities (must sum to ~1)."""
    p = np.asarray(probabilities, dtype=np.float64)
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"probabilities must sum to 1, got {total}")
    return rng.choice(len(p), size=size, p=p / total)
