"""Volume-to-device placement policies.

The paper's load-balancing discussion (Section V) asks how volumes should
be spread over storage devices given diverse intensities and burstiness.
A placement policy maps each volume to a device; the balancer
(:mod:`repro.cluster.balancer`) measures the resulting imbalance.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, List, Sequence

from ..trace.dataset import TraceDataset, VolumeTrace

__all__ = [
    "PlacementPolicy",
    "RoundRobinPlacement",
    "HashPlacement",
    "LeastLoadedPlacement",
    "place_dataset",
]


class PlacementPolicy(abc.ABC):
    """Assigns volumes to ``n_devices`` devices."""

    name: str = "base"

    def __init__(self, n_devices: int) -> None:
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        self.n_devices = n_devices

    @abc.abstractmethod
    def place(self, volumes: Sequence[VolumeTrace]) -> Dict[str, int]:
        """Map volume id -> device index."""


class RoundRobinPlacement(PlacementPolicy):
    """Volumes assigned cyclically in the given order (capacity-oblivious)."""

    name = "round-robin"

    def place(self, volumes: Sequence[VolumeTrace]) -> Dict[str, int]:
        return {v.volume_id: i % self.n_devices for i, v in enumerate(volumes)}


class HashPlacement(PlacementPolicy):
    """Stable hash of the volume id (what a stateless dispatcher can do)."""

    name = "hash"

    def place(self, volumes: Sequence[VolumeTrace]) -> Dict[str, int]:
        out = {}
        for v in volumes:
            digest = hashlib.blake2b(v.volume_id.encode(), digest_size=8).digest()
            out[v.volume_id] = int.from_bytes(digest, "big") % self.n_devices
        return out


class LeastLoadedPlacement(PlacementPolicy):
    """Greedy longest-processing-time assignment by total request count.

    Volumes are sorted by descending load and each goes to the currently
    least-loaded device — the classic LPT makespan heuristic, using the
    observed (or historically estimated) per-volume load.
    """

    name = "least-loaded"

    def __init__(self, n_devices: int, by: str = "requests") -> None:
        super().__init__(n_devices)
        if by not in ("requests", "bytes"):
            raise ValueError("by must be 'requests' or 'bytes'")
        self.by = by

    def _load(self, volume: VolumeTrace) -> float:
        return float(len(volume) if self.by == "requests" else volume.total_bytes)

    def place(self, volumes: Sequence[VolumeTrace]) -> Dict[str, int]:
        loads: List[float] = [0.0] * self.n_devices
        out: Dict[str, int] = {}
        for v in sorted(volumes, key=self._load, reverse=True):
            device = min(range(self.n_devices), key=loads.__getitem__)
            out[v.volume_id] = device
            loads[device] += self._load(v)
        return out


def place_dataset(dataset: TraceDataset, policy: PlacementPolicy) -> Dict[str, int]:
    """Place every volume of a dataset using the policy."""
    return policy.place(dataset.volumes())
