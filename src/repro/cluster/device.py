"""Flash SSD device model.

A minimal but faithful NAND abstraction: pages grouped into erase blocks,
program/erase accounting, and wear tracking.  The FTL
(:mod:`repro.cluster.ftl`) drives it; the paper's storage-cluster
discussion (Findings 8, 11, 14) is about how workload patterns affect
exactly these counters (write amplification, erase wear).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SSDGeometry", "SSDDevice"]


@dataclass(frozen=True)
class SSDGeometry:
    """Physical layout of the device.

    Attributes:
        n_blocks: number of erase blocks.
        pages_per_block: pages per erase block.
        page_size: bytes per page (the FTL maps one logical block per page).
    """

    n_blocks: int
    pages_per_block: int
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.n_blocks <= 0 or self.pages_per_block <= 0 or self.page_size <= 0:
            raise ValueError("geometry dimensions must be positive")

    @property
    def n_pages(self) -> int:
        return self.n_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.n_pages * self.page_size


class SSDDevice:
    """Page-programmable, block-erasable flash device.

    Enforces the NAND constraints: a page must be erased before it can be
    programmed again, and erasure happens per block.  Tracks per-block
    erase counts (wear) and total program/erase operations.
    """

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        self._programmed = np.zeros(geometry.n_pages, dtype=bool)
        self.erase_counts = np.zeros(geometry.n_blocks, dtype=np.int64)
        self.programs = 0
        self.erases = 0

    def page_index(self, block: int, page: int) -> int:
        g = self.geometry
        if not 0 <= block < g.n_blocks:
            raise ValueError(f"block {block} out of range")
        if not 0 <= page < g.pages_per_block:
            raise ValueError(f"page {page} out of range")
        return block * g.pages_per_block + page

    def is_programmed(self, page_idx: int) -> bool:
        return bool(self._programmed[page_idx])

    def program(self, page_idx: int) -> None:
        """Program one page; programming a non-erased page is a bug in the
        caller (the FTL), so it raises."""
        if self._programmed[page_idx]:
            raise RuntimeError(f"page {page_idx} programmed twice without erase")
        self._programmed[page_idx] = True
        self.programs += 1

    def erase_block(self, block: int) -> None:
        """Erase a whole block, freeing all its pages."""
        g = self.geometry
        lo = block * g.pages_per_block
        self._programmed[lo : lo + g.pages_per_block] = False
        self.erase_counts[block] += 1
        self.erases += 1

    @property
    def max_erase_count(self) -> int:
        return int(self.erase_counts.max())

    @property
    def wear_imbalance(self) -> float:
        """Max-to-mean erase-count ratio; 1.0 is perfectly wear-leveled."""
        mean = self.erase_counts.mean()
        if mean == 0:
            return 1.0
        return float(self.erase_counts.max() / mean)
