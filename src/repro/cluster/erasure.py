"""Parity-update schemes for erasure-coded block storage.

The paper's update-pattern findings (11 and 14) matter to erasure-coded
backends because every data-block update must also update parity.  CodFS
[7] sizes reserved parity-log space by the update working set, and PBS
[34] exploits overwrites with speculative partial writes.  This module
models the three classic schemes over a (k, m) stripe layout and counts
the I/O each one costs for a given write stream:

* **read-modify-write (RMW)** — per update: read the old data block and
  the m parity blocks, write the data block and the m parity blocks.
* **full-stripe write** — buffer writes; a stripe whose k data blocks are
  all dirty is written out with parity computed in memory (no reads);
  partial stripes fall back to RMW at flush.
* **parity logging** — per update: write the data block and append one
  parity delta to the stripe's log; when a stripe's log fills, merge it
  (read k data blocks, write m parity blocks, clear the log).

Costs are in block I/Os, so schemes are comparable across volumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

__all__ = [
    "StripeLayout",
    "ParityCost",
    "rmw_cost",
    "full_stripe_cost",
    "parity_logging_cost",
    "compare_parity_schemes",
]


@dataclass(frozen=True)
class StripeLayout:
    """RS(k, m) striping: ``k`` data blocks per stripe, ``m`` parities."""

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k <= 0 or self.m <= 0:
            raise ValueError("k and m must be positive")

    def stripe_of(self, block: int) -> int:
        return block // self.k

    def stripes_of(self, blocks: np.ndarray) -> np.ndarray:
        return np.asarray(blocks, dtype=np.int64) // self.k


@dataclass(frozen=True)
class ParityCost:
    """I/O accounting of one scheme over one write stream (block I/Os)."""

    scheme: str
    n_updates: int
    data_writes: int
    parity_writes: int
    extra_reads: int

    @property
    def total_ios(self) -> int:
        return self.data_writes + self.parity_writes + self.extra_reads

    @property
    def parity_overhead(self) -> float:
        """(parity writes + extra reads) per data write."""
        if self.data_writes == 0:
            return float("nan")
        return (self.parity_writes + self.extra_reads) / self.data_writes


def rmw_cost(blocks: Iterable[int], layout: StripeLayout) -> ParityCost:
    """Read-modify-write: every update pays m parity writes and
    (1 + m) reads (old data + old parities)."""
    blocks = list(blocks)
    n = len(blocks)
    return ParityCost(
        scheme="rmw",
        n_updates=n,
        data_writes=n,
        parity_writes=n * layout.m,
        extra_reads=n * (1 + layout.m),
    )


def full_stripe_cost(
    blocks: Iterable[int], layout: StripeLayout, buffer_writes: int = 1024
) -> ParityCost:
    """Buffered full-stripe writes.

    Writes accumulate in a buffer of ``buffer_writes`` requests; at each
    flush, stripes with all ``k`` data blocks dirty are written as full
    stripes (k data + m parity writes, no reads), the rest fall back to
    per-block RMW.  Sequential, covering write patterns approach pure
    full-stripe cost; scattered updates degrade to RMW.
    """
    if buffer_writes <= 0:
        raise ValueError("buffer_writes must be positive")
    blocks = list(blocks)
    data_writes = parity_writes = extra_reads = 0
    pending: Dict[int, set] = defaultdict(set)

    def flush() -> None:
        nonlocal data_writes, parity_writes, extra_reads
        for _stripe, dirty in pending.items():
            if len(dirty) >= layout.k:
                data_writes += layout.k
                parity_writes += layout.m
            else:
                n = len(dirty)
                data_writes += n
                parity_writes += n * layout.m
                extra_reads += n * (1 + layout.m)
        pending.clear()

    for i, block in enumerate(blocks, start=1):
        pending[layout.stripe_of(block)].add(block % layout.k)
        if i % buffer_writes == 0:
            flush()
    flush()
    return ParityCost(
        scheme="full-stripe",
        n_updates=len(blocks),
        data_writes=data_writes,
        parity_writes=parity_writes,
        extra_reads=extra_reads,
    )


def parity_logging_cost(
    blocks: Iterable[int], layout: StripeLayout, log_capacity: int = 16
) -> ParityCost:
    """Parity logging with per-stripe reserved space (CodFS-style).

    Each update writes its data block and appends one parity delta to the
    stripe's reserved log (one sequential write, no reads; the delta is
    computed from the new data alone with XOR-based codes).  When a
    stripe's log reaches ``log_capacity`` deltas, the parity is merged:
    read the stripe's k data blocks, write m parities, clear the log.
    A final merge pass accounts for the deltas still parked in logs.
    """
    if log_capacity <= 0:
        raise ValueError("log_capacity must be positive")
    blocks = list(blocks)
    data_writes = len(blocks)
    parity_writes = 0
    extra_reads = 0
    log_fill: Dict[int, int] = defaultdict(int)
    for block in blocks:
        stripe = layout.stripe_of(block)
        parity_writes += 1  # the appended delta
        log_fill[stripe] += 1
        if log_fill[stripe] >= log_capacity:
            extra_reads += layout.k
            parity_writes += layout.m
            log_fill[stripe] = 0
    # Final merges for non-empty logs.
    dirty = sum(1 for fill in log_fill.values() if fill)
    extra_reads += dirty * layout.k
    parity_writes += dirty * layout.m
    return ParityCost(
        scheme="parity-logging",
        n_updates=len(blocks),
        data_writes=data_writes,
        parity_writes=parity_writes,
        extra_reads=extra_reads,
    )


def compare_parity_schemes(
    blocks: Iterable[int],
    layout: StripeLayout = StripeLayout(4, 2),
    buffer_writes: int = 1024,
    log_capacity: int = 16,
) -> List[ParityCost]:
    """Run all three schemes on the same write stream."""
    blocks = list(blocks)
    return [
        rmw_cost(blocks, layout),
        full_stripe_cost(blocks, layout, buffer_writes),
        parity_logging_cost(blocks, layout, log_capacity),
    ]
