"""Device service-time and queueing model.

The AliCloud traces record no response times (paper Section III-B), so
latency effects must be modeled.  This module provides the missing piece:
a flash-device service-time model (fixed overhead + size-proportional
transfer + random-access penalty) and a FIFO single-server queue per
device (Lindley recursion), turning any placement of volumes onto devices
into per-request response times.

This quantifies the paper's load-balancing motivation directly: an
overloaded device cannot serve requests in time, and tail latency
explodes with utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..trace.dataset import TraceDataset

__all__ = [
    "DeviceServiceModel",
    "LatencyReport",
    "queue_response_times",
    "simulate_device_latencies",
]


@dataclass(frozen=True)
class DeviceServiceModel:
    """Service time of one request on a flash device.

    ``service = base_latency + size/bandwidth (+ random_penalty if the
    offset jumps more than ``random_threshold`` from the previous request
    on the device)``.  Defaults approximate a datacenter SATA SSD: 80 µs
    base, 500 MB/s, 20 µs penalty for non-sequential access.
    """

    base_latency: float = 80e-6
    bandwidth: float = 500e6
    random_penalty: float = 20e-6
    random_threshold: int = 128 * 1024

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.random_penalty < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def service_times(self, sizes: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Vectorized service times for a device's request stream (in
        arrival order)."""
        sizes = np.asarray(sizes, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        service = self.base_latency + sizes / self.bandwidth
        if len(offsets) > 1:
            jumps = np.abs(np.diff(offsets)) > self.random_threshold
            service[1:] += jumps * self.random_penalty
        if len(offsets) >= 1:
            service[0] += self.random_penalty  # first access is a seek
        return service


def queue_response_times(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """FIFO single-server queue: per-request response times.

    Lindley recursion: completion ``C_i = max(A_i, C_{i-1}) + S_i``;
    response ``R_i = C_i - A_i``.  Arrivals must be sorted.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    services = np.asarray(services, dtype=np.float64)
    if len(arrivals) != len(services):
        raise ValueError("arrivals and services must have equal length")
    if len(arrivals) and np.any(np.diff(arrivals) < 0):
        raise ValueError("arrivals must be sorted")
    response = np.empty(len(arrivals))
    completion = -np.inf
    for i in range(len(arrivals)):
        start = arrivals[i] if arrivals[i] > completion else completion
        completion = start + services[i]
        response[i] = completion - arrivals[i]
    return response


@dataclass(frozen=True)
class LatencyReport:
    """Per-device latency outcome of one placement."""

    n_devices: int
    #: per-device response-time arrays (seconds), index = device id
    response_times: Dict[int, np.ndarray]
    #: per-device utilization: busy time / observed span
    utilization: Dict[int, float]

    def percentile(self, device: int, p: float) -> float:
        times = self.response_times.get(device)
        if times is None or len(times) == 0:
            return float("nan")
        return float(np.percentile(times, p))

    def overall_percentile(self, p: float) -> float:
        arrays = [t for t in self.response_times.values() if len(t)]
        if not arrays:
            return float("nan")
        return float(np.percentile(np.concatenate(arrays), p))

    def worst_device_percentile(self, p: float) -> float:
        values = [
            self.percentile(d, p)
            for d, t in self.response_times.items()
            if len(t)
        ]
        return max(values) if values else float("nan")


def simulate_device_latencies(
    dataset: TraceDataset,
    placement: Dict[str, int],
    n_devices: int,
    model: Optional[DeviceServiceModel] = None,
) -> LatencyReport:
    """Queue every volume's requests at its device and compute latencies.

    Requests of all volumes placed on a device are merged in arrival
    order and served FIFO under the device's service model.
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    model = model or DeviceServiceModel()
    per_device: Dict[int, list] = {d: [] for d in range(n_devices)}
    for trace in dataset.volumes():
        if len(trace) == 0:
            continue
        device = placement[trace.volume_id]
        if not 0 <= device < n_devices:
            raise ValueError(f"placement maps {trace.volume_id!r} to bad device {device}")
        per_device[device].append(trace)
    response: Dict[int, np.ndarray] = {}
    utilization: Dict[int, float] = {}
    span = dataset.duration if dataset.n_requests else 0.0
    for device, traces in per_device.items():
        if not traces:
            response[device] = np.array([])
            utilization[device] = 0.0
            continue
        arrivals = np.concatenate([t.timestamps for t in traces])
        sizes = np.concatenate([t.sizes for t in traces])
        offsets = np.concatenate([t.offsets for t in traces])
        order = np.argsort(arrivals, kind="stable")
        arrivals, sizes, offsets = arrivals[order], sizes[order], offsets[order]
        services = model.service_times(sizes, offsets)
        response[device] = queue_response_times(arrivals, services)
        utilization[device] = float(services.sum() / span) if span > 0 else float("inf")
    return LatencyReport(
        n_devices=n_devices, response_times=response, utilization=utilization
    )
