"""Wear-leveling policies for the FTL substrate.

The paper's storage-cluster discussion (Findings 11 and 14) notes that
varying update patterns harm flash wear leveling.  This module extends
the page-mapped FTL with pluggable free-block selection:

* ``"none"``        — LIFO free-block reuse (the baseline FTL behaviour),
* ``"dynamic"``     — always allocate the free block with the lowest
                      erase count (classic dynamic wear leveling),
* ``"threshold"``   — dynamic allocation plus cold-data swaps when the
                      erase-count spread exceeds a threshold (a light
                      form of static wear leveling).

``compare_wear_leveling`` replays the same write stream under each
policy and reports wear imbalance and write amplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from .device import SSDGeometry
from .ftl import FTLStats, PageMappedFTL

__all__ = ["WearLevelingFTL", "WearReport", "compare_wear_leveling", "WEAR_POLICIES"]

WEAR_POLICIES = ("none", "dynamic", "threshold")


class WearLevelingFTL(PageMappedFTL):
    """Page-mapped FTL with a wear-aware free-block allocator.

    Args:
        policy: one of :data:`WEAR_POLICIES`.
        wear_delta_threshold: for ``"threshold"``, trigger a cold-swap
            when (max - min) erase count exceeds this value.
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        policy: str = "dynamic",
        op_ratio: float = 0.07,
        gc_free_block_reserve: int = 2,
        wear_delta_threshold: int = 8,
    ) -> None:
        if policy not in WEAR_POLICIES:
            raise ValueError(f"unknown wear policy: {policy!r} (expected {WEAR_POLICIES})")
        super().__init__(geometry, op_ratio, gc_free_block_reserve)
        self.policy = policy
        self.wear_delta_threshold = wear_delta_threshold
        self.cold_swaps = 0

    def _take_free_block(self) -> int:
        if self.policy == "none" or len(self._free_blocks) <= 1:
            return super()._take_free_block()
        # Dynamic wear leveling: among free blocks, pick the least-worn.
        counts = self.device.erase_counts
        best_idx = min(
            range(len(self._free_blocks)), key=lambda i: counts[self._free_blocks[i]]
        )
        return self._free_blocks.pop(best_idx)

    def _maybe_cold_swap(self) -> None:
        """Relocate the live data of the least-worn full block so the block
        becomes erasable — classic static wear leveling."""
        counts = self.device.erase_counts
        spread = int(counts.max() - counts.min())
        if spread < self.wear_delta_threshold:
            return
        g = self.geometry
        full = self._written_per_block >= g.pages_per_block
        full[self._active_block] = False
        if not full.any():
            return
        candidates = np.where(full)[0]
        victim = int(candidates[np.argmin(counts[candidates])])
        # Relocate the victim's live pages and erase it, even though it may
        # hold little garbage — that is the point of a cold swap.
        lo = victim * g.pages_per_block
        live_pages = np.where(self._owner[lo : lo + g.pages_per_block] >= 0)[0]
        logicals = [int(self._owner[lo + p]) for p in live_pages]
        for logical in logicals:
            self._invalidate(logical)
        self.device.erase_block(victim)
        self._live_per_block[victim] = 0
        self._written_per_block[victim] = 0
        self._free_blocks.insert(0, victim)
        for logical in logicals:
            self._append(logical, counts_as_host=False)
        self.cold_swaps += 1

    def write(self, logical: int) -> None:
        super().write(logical)
        if self.policy == "threshold":
            self._maybe_cold_swap()


@dataclass(frozen=True)
class WearReport:
    """Outcome of one policy on one write stream."""

    policy: str
    stats: FTLStats
    wear_imbalance: float
    max_erase: int
    cold_swaps: int


def compare_wear_leveling(
    writes: Iterable[int],
    geometry: SSDGeometry,
    policies: Iterable[str] = WEAR_POLICIES,
    op_ratio: float = 0.1,
) -> Dict[str, WearReport]:
    """Replay the same logical write stream under each wear policy."""
    writes = list(writes)
    out: Dict[str, WearReport] = {}
    for policy in policies:
        ftl = WearLevelingFTL(geometry, policy=policy, op_ratio=op_ratio)
        capacity = ftl.logical_capacity_blocks
        ftl.write_many(w % capacity for w in writes)
        out[policy] = WearReport(
            policy=policy,
            stats=ftl.stats(),
            wear_imbalance=ftl.device.wear_imbalance,
            max_erase=ftl.device.max_erase_count,
            cold_swaps=ftl.cold_swaps,
        )
    return out
