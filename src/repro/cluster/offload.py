"""Write offloading analysis (Narayanan et al., FAST'08; paper Finding 7).

The paper observes that removing writes leaves most volumes idle for long
stretches, so redirecting writes elsewhere lets primary volumes spin down
for power savings.  This module measures exactly that opportunity: idle
periods of the read-only request stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..trace.dataset import TraceDataset, VolumeTrace

__all__ = ["OffloadOpportunity", "volume_offload_opportunity", "dataset_offload_summary"]


@dataclass(frozen=True)
class OffloadOpportunity:
    """Idle-time analysis of one volume with writes offloaded.

    An *idle period* is a gap of at least ``idle_threshold`` seconds
    between consecutive reads (or trace boundaries).  ``idle_fraction`` is
    the fraction of the observation window a spun-down volume could spend
    idle if writes were redirected.
    """

    volume_id: str
    idle_threshold: float
    window: float
    n_reads: int
    n_idle_periods: int
    idle_seconds: float

    @property
    def idle_fraction(self) -> float:
        if self.window <= 0:
            return float("nan")
        return self.idle_seconds / self.window


def volume_offload_opportunity(
    trace: VolumeTrace,
    t0: float,
    t1: float,
    idle_threshold: float = 60.0,
) -> OffloadOpportunity:
    """Measure the read-idle periods of one volume over ``[t0, t1]``.

    Writes are assumed offloaded, so only reads interrupt idleness.
    """
    if t1 <= t0:
        raise ValueError("t1 must exceed t0")
    if idle_threshold <= 0:
        raise ValueError("idle_threshold must be positive")
    reads = trace.timestamps[~trace.is_write]
    reads = reads[(reads >= t0) & (reads <= t1)]
    boundaries = np.concatenate([[t0], reads, [t1]])
    gaps = np.diff(boundaries)
    idle = gaps[gaps >= idle_threshold]
    return OffloadOpportunity(
        volume_id=trace.volume_id,
        idle_threshold=idle_threshold,
        window=t1 - t0,
        n_reads=len(reads),
        n_idle_periods=len(idle),
        idle_seconds=float(idle.sum()),
    )


def dataset_offload_summary(
    dataset: TraceDataset, idle_threshold: float = 60.0
) -> List[OffloadOpportunity]:
    """Per-volume offload opportunities over the dataset's full span."""
    t0, t1 = dataset.start_time, dataset.end_time
    return [
        volume_offload_opportunity(v, t0, t1, idle_threshold)
        for v in dataset.volumes()
    ]
