"""Storage cluster management: SSD/FTL model, wear leveling, placement,
balancing, write offloading."""

from .device import SSDDevice, SSDGeometry
from .ftl import FTLStats, PageMappedFTL
from .placement import (
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    place_dataset,
)
from .balancer import ImbalanceReport, device_load_timeseries, measure_imbalance
from .wear import WEAR_POLICIES, WearLevelingFTL, WearReport, compare_wear_leveling
from .latency import (
    DeviceServiceModel,
    LatencyReport,
    queue_response_times,
    simulate_device_latencies,
)
from .erasure import (
    ParityCost,
    StripeLayout,
    compare_parity_schemes,
    full_stripe_cost,
    parity_logging_cost,
    rmw_cost,
)
from .offload import (
    OffloadOpportunity,
    dataset_offload_summary,
    volume_offload_opportunity,
)

__all__ = [
    "SSDDevice",
    "SSDGeometry",
    "FTLStats",
    "PageMappedFTL",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "HashPlacement",
    "LeastLoadedPlacement",
    "place_dataset",
    "ImbalanceReport",
    "device_load_timeseries",
    "measure_imbalance",
    "WEAR_POLICIES",
    "WearLevelingFTL",
    "WearReport",
    "compare_wear_leveling",
    "ParityCost",
    "StripeLayout",
    "compare_parity_schemes",
    "rmw_cost",
    "full_stripe_cost",
    "parity_logging_cost",
    "DeviceServiceModel",
    "LatencyReport",
    "queue_response_times",
    "simulate_device_latencies",
    "OffloadOpportunity",
    "volume_offload_opportunity",
    "dataset_offload_summary",
]
