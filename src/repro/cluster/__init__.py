"""Storage cluster management: SSD/FTL model, wear leveling, placement,
balancing, write offloading."""

from .balancer import ImbalanceReport, device_load_timeseries, measure_imbalance
from .device import SSDDevice, SSDGeometry
from .erasure import (
    ParityCost,
    StripeLayout,
    compare_parity_schemes,
    full_stripe_cost,
    parity_logging_cost,
    rmw_cost,
)
from .ftl import FTLStats, PageMappedFTL
from .latency import (
    DeviceServiceModel,
    LatencyReport,
    queue_response_times,
    simulate_device_latencies,
)
from .offload import (
    OffloadOpportunity,
    dataset_offload_summary,
    volume_offload_opportunity,
)
from .placement import (
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    place_dataset,
)
from .wear import WEAR_POLICIES, WearLevelingFTL, WearReport, compare_wear_leveling

__all__ = [
    "SSDDevice",
    "SSDGeometry",
    "FTLStats",
    "PageMappedFTL",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "HashPlacement",
    "LeastLoadedPlacement",
    "place_dataset",
    "ImbalanceReport",
    "device_load_timeseries",
    "measure_imbalance",
    "WEAR_POLICIES",
    "WearLevelingFTL",
    "WearReport",
    "compare_wear_leveling",
    "ParityCost",
    "StripeLayout",
    "compare_parity_schemes",
    "rmw_cost",
    "full_stripe_cost",
    "parity_logging_cost",
    "DeviceServiceModel",
    "LatencyReport",
    "queue_response_times",
    "simulate_device_latencies",
    "OffloadOpportunity",
    "volume_offload_opportunity",
    "dataset_offload_summary",
]
