"""Page-mapped flash translation layer with greedy garbage collection.

Connects workload update patterns (paper Findings 11 and 14) to flash
write amplification: overwrites invalidate pages, GC relocates the live
pages of victim blocks, and the relocation traffic is the amplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from .device import SSDDevice, SSDGeometry

__all__ = ["FTLStats", "PageMappedFTL"]


@dataclass(frozen=True)
class FTLStats:
    """Accounting snapshot of an FTL run."""

    host_writes: int
    gc_writes: int
    erases: int
    live_pages: int

    @property
    def write_amplification(self) -> float:
        """(host + GC page programs) / host page programs."""
        if self.host_writes == 0:
            return float("nan")
        return (self.host_writes + self.gc_writes) / self.host_writes


class PageMappedFTL:
    """Log-structured page-mapped FTL over an :class:`SSDDevice`.

    Logical blocks map to flash pages; writes append to an active block,
    overwrites invalidate old pages, and greedy GC (fewest-live-pages
    victim) reclaims space when free blocks fall to the reserve.

    Args:
        geometry: flash layout.
        op_ratio: over-provisioning as a fraction of total capacity that
            is never exposed to the host (default 0.07 ~ consumer SSD).
        gc_free_block_reserve: GC triggers when free blocks fall below
            this count (must leave room for GC itself to proceed).
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        op_ratio: float = 0.07,
        gc_free_block_reserve: int = 2,
    ) -> None:
        if not 0 <= op_ratio < 1:
            raise ValueError("op_ratio must be in [0, 1)")
        if gc_free_block_reserve < 1:
            raise ValueError("gc_free_block_reserve must be >= 1")
        self.device = SSDDevice(geometry)
        self.geometry = geometry
        # The logical space must leave room for the GC reserve plus one
        # active block, or GC can never free enough blocks to proceed.
        hard_cap = geometry.n_pages - (gc_free_block_reserve + 1) * geometry.pages_per_block
        if hard_cap <= 0:
            raise ValueError(
                "device too small for the GC reserve: "
                f"{geometry.n_blocks} blocks, reserve {gc_free_block_reserve}"
            )
        self._logical_capacity = min(int(geometry.n_pages * (1 - op_ratio)), hard_cap)
        self._map: Dict[int, int] = {}  # logical block -> page index
        self._owner = np.full(geometry.n_pages, -1, dtype=np.int64)  # page -> logical (-1 invalid/free)
        self._live_per_block = np.zeros(geometry.n_blocks, dtype=np.int64)
        self._written_per_block = np.zeros(geometry.n_blocks, dtype=np.int64)
        self._free_blocks: List[int] = list(range(geometry.n_blocks - 1, 0, -1))
        self._active_block = 0
        self._active_page = 0
        self._reserve = gc_free_block_reserve
        self.host_writes = 0
        self.gc_writes = 0

    @property
    def logical_capacity_blocks(self) -> int:
        """Number of logical blocks the host may address."""
        return self._logical_capacity

    @property
    def mapped_blocks(self) -> int:
        return len(self._map)

    def _invalidate(self, logical: int) -> None:
        page = self._map.get(logical)
        if page is not None:
            self._owner[page] = -1
            self._live_per_block[page // self.geometry.pages_per_block] -= 1

    def _take_free_block(self) -> int:
        if not self._free_blocks:
            raise RuntimeError("flash device out of free blocks (GC failed to keep up)")
        return self._free_blocks.pop()

    def _append(self, logical: int, counts_as_host: bool) -> None:
        g = self.geometry
        if self._active_page >= g.pages_per_block:
            self._active_block = self._take_free_block()
            self._active_page = 0
        page = self.device.page_index(self._active_block, self._active_page)
        self.device.program(page)
        self._owner[page] = logical
        self._live_per_block[self._active_block] += 1
        self._written_per_block[self._active_block] += 1
        self._map[logical] = page
        self._active_page += 1
        if counts_as_host:
            self.host_writes += 1
        else:
            self.gc_writes += 1

    def _gc_victim(self) -> Optional[int]:
        """Greedy: the fully-written block with the fewest live pages.

        A block with zero invalid pages is never picked — relocating a
        fully-live block frees nothing and would let GC spin forever.
        """
        g = self.geometry
        full = self._written_per_block >= g.pages_per_block
        full[self._active_block] = False
        full &= self._live_per_block < g.pages_per_block
        if not full.any():
            return None
        candidates = np.where(full)[0]
        return int(candidates[np.argmin(self._live_per_block[candidates])])

    def _run_gc(self) -> None:
        while len(self._free_blocks) < self._reserve:
            victim = self._gc_victim()
            if victim is None:
                return
            g = self.geometry
            lo = victim * g.pages_per_block
            live_pages = np.where(self._owner[lo : lo + g.pages_per_block] >= 0)[0]
            logicals = [int(self._owner[lo + p]) for p in live_pages]
            for logical in logicals:
                self._invalidate(logical)
            self.device.erase_block(victim)
            self._live_per_block[victim] = 0
            self._written_per_block[victim] = 0
            self._free_blocks.insert(0, victim)
            for logical in logicals:
                self._append(logical, counts_as_host=False)

    def write(self, logical: int) -> None:
        """Host write of one logical block."""
        if not 0 <= logical < self._logical_capacity:
            raise ValueError(
                f"logical block {logical} out of range [0, {self._logical_capacity})"
            )
        self._invalidate(logical)
        self._append(logical, counts_as_host=True)
        if len(self._free_blocks) < self._reserve:
            self._run_gc()

    def write_many(self, logicals: Iterable[int]) -> None:
        for logical in logicals:
            self.write(int(logical))

    def read(self, logical: int) -> Optional[int]:
        """Physical page of a logical block, or None if never written."""
        return self._map.get(logical)

    def stats(self) -> FTLStats:
        return FTLStats(
            host_writes=self.host_writes,
            gc_writes=self.gc_writes,
            erases=self.device.erases,
            live_pages=len(self._map),
        )
