"""Load-balance measurement of a placement.

Given a placement (volume -> device), build per-device load time series
and quantify imbalance — the quantities the paper's load-balancing
implications (Findings 1-4) are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..stats.timeseries import bucket_edges
from ..trace.dataset import TraceDataset

__all__ = ["ImbalanceReport", "measure_imbalance", "device_load_timeseries"]


@dataclass(frozen=True)
class ImbalanceReport:
    """Per-interval device-load imbalance statistics.

    All metrics are computed per interval across devices, then summarized
    over intervals with >=1 request anywhere.
    """

    n_devices: int
    interval: float
    #: mean over intervals of (max device load / mean device load)
    mean_peak_to_mean: float
    #: 95th percentile over intervals of (max / mean)
    p95_peak_to_mean: float
    #: mean over intervals of the coefficient of variation of device loads
    mean_cov: float
    #: total requests handled by each device
    device_totals: np.ndarray


def device_load_timeseries(
    dataset: TraceDataset,
    placement: Dict[str, int],
    n_devices: int,
    interval: float = 60.0,
) -> np.ndarray:
    """Requests per (device, interval) matrix of shape (n_devices, n_intervals)."""
    t0, t1 = dataset.start_time, dataset.end_time
    edges = bucket_edges(t0, t1, interval)
    n_int = len(edges) - 1
    load = np.zeros((n_devices, n_int), dtype=np.int64)
    for trace in dataset.volumes():
        if len(trace) == 0:
            continue
        device = placement[trace.volume_id]
        idx = np.minimum(((trace.timestamps - t0) / interval).astype(np.int64), n_int - 1)
        load[device] += np.bincount(idx, minlength=n_int)
    return load


def measure_imbalance(
    dataset: TraceDataset,
    placement: Dict[str, int],
    n_devices: int,
    interval: float = 60.0,
) -> ImbalanceReport:
    """Quantify the load imbalance a placement produces."""
    load = device_load_timeseries(dataset, placement, n_devices, interval)
    totals = load.sum(axis=1)
    per_interval_total = load.sum(axis=0)
    busy = per_interval_total > 0
    if not busy.any():
        raise ValueError("dataset has no requests")
    busy_load = load[:, busy].astype(np.float64)
    means = busy_load.mean(axis=0)
    maxes = busy_load.max(axis=0)
    peak_to_mean = maxes / np.maximum(means, 1e-12)
    stds = busy_load.std(axis=0)
    cov = stds / np.maximum(means, 1e-12)
    return ImbalanceReport(
        n_devices=n_devices,
        interval=interval,
        mean_peak_to_mean=float(peak_to_mean.mean()),
        p95_peak_to_mean=float(np.percentile(peak_to_mean, 95)),
        mean_cov=float(cov.mean()),
        device_totals=totals,
    )
