"""Trace file readers for the AliCloud and MSRC formats.

AliCloud format (as released at github.com/alibaba/block-traces)::

    device_id,opcode,offset,length,timestamp

with ``device_id`` an integer volume number, ``opcode`` in ``{R, W}``,
``offset``/``length`` in bytes, and ``timestamp`` in microseconds.

MSRC format (SNIA IOTTA release)::

    timestamp,hostname,disk_number,type,offset,size,response_time

with ``timestamp``/``response_time`` in Windows filetime ticks (100 ns) and
``type`` in ``{Read, Write}``.  The volume id is ``hostname_disknumber``
(e.g. ``src1_0``).

Files ending in ``.gz`` are transparently decompressed.  Readers stream
line-by-line and accumulate into columnar :class:`~repro.trace.dataset.VolumeTrace`
objects, so memory stays proportional to the trace, not to Python row objects.
"""

from __future__ import annotations

import gzip
import io
import os
from collections import defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TextIO

import numpy as np

from .dataset import TraceDataset, VolumeTrace
from .record import IORequest, OpType

__all__ = [
    "open_trace_file",
    "iter_alicloud_requests",
    "iter_msrc_requests",
    "read_alicloud",
    "read_msrc",
    "read_dataset_dir",
    "TraceFormatError",
]

#: Windows filetime resolution used by MSRC timestamps.
_FILETIME_TICKS_PER_SECOND = 10_000_000
_MICROSECONDS_PER_SECOND = 1_000_000


class TraceFormatError(ValueError):
    """A trace line could not be parsed in the expected format."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


#: Read buffer in front of gzip decompression.  GzipFile hands out small
#: reads; a 1 MiB buffered reader between it and the text decoder keeps
#: ``.gz`` ingest from being bound by per-read call overhead.
_GZIP_BUFFER_BYTES = 1 << 20


def open_trace_file(path: str) -> TextIO:
    """Open a trace file for reading, decompressing ``.gz`` transparently."""
    if path.endswith(".gz"):
        raw = gzip.open(path, "rb")
        buffered = io.BufferedReader(raw, buffer_size=_GZIP_BUFFER_BYTES)  # type: ignore[arg-type]
        return io.TextIOWrapper(buffered, encoding="utf-8")
    return open(path, "r", encoding="utf-8", buffering=_GZIP_BUFFER_BYTES)


def _parse_alicloud_line(line: str, lineno: int) -> IORequest:
    parts = line.rstrip("\n").split(",")
    if len(parts) != 5:
        raise TraceFormatError(
            f"expected 5 comma-separated fields, got {len(parts)}", lineno
        )
    device, opcode, offset, length, timestamp = parts
    try:
        return IORequest(
            volume=device.strip(),
            op=OpType.parse(opcode),
            offset=int(offset),
            size=int(length),
            timestamp=int(timestamp) / _MICROSECONDS_PER_SECOND,
        )
    except ValueError as exc:
        raise TraceFormatError(str(exc), lineno) from exc


def _parse_msrc_line(line: str, lineno: int) -> IORequest:
    parts = line.rstrip("\n").split(",")
    if len(parts) != 7:
        raise TraceFormatError(
            f"expected 7 comma-separated fields, got {len(parts)}", lineno
        )
    timestamp, hostname, disk, optype, offset, size, response = parts
    try:
        return IORequest(
            volume=f"{hostname.strip()}_{int(disk)}",
            op=OpType.parse(optype),
            offset=int(offset),
            size=int(size),
            timestamp=int(timestamp) / _FILETIME_TICKS_PER_SECOND,
            response_time=int(response) / _FILETIME_TICKS_PER_SECOND,
        )
    except ValueError as exc:
        raise TraceFormatError(str(exc), lineno) from exc


def _iter_requests(
    path: str, parse: Callable[[str, int], IORequest], skip_header: bool
) -> Iterator[IORequest]:
    with open_trace_file(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            if lineno == 1 and skip_header and _looks_like_header(line):
                continue
            yield parse(line, lineno)


def _looks_like_header(line: str) -> bool:
    # Data rows always end with a numeric field (timestamp for AliCloud,
    # response time for MSRC); a column-name header does not.  The volume
    # id field cannot be used — device ids may be arbitrary strings.
    last = line.rstrip("\n").rsplit(",", 1)[-1].strip()
    try:
        int(last)
        return False
    except ValueError:
        return True


def iter_alicloud_requests(path: str, skip_header: bool = True) -> Iterator[IORequest]:
    """Stream :class:`IORequest` records from an AliCloud-format file."""
    return _iter_requests(path, _parse_alicloud_line, skip_header)


def iter_msrc_requests(path: str, skip_header: bool = True) -> Iterator[IORequest]:
    """Stream :class:`IORequest` records from an MSRC-format file."""
    return _iter_requests(path, _parse_msrc_line, skip_header)


class _ColumnAccumulator:
    """Grows per-volume column lists and finalizes them into VolumeTraces."""

    def __init__(self, with_response_times: bool) -> None:
        self.with_response_times = with_response_times
        self.timestamps: Dict[str, List[float]] = defaultdict(list)
        self.offsets: Dict[str, List[int]] = defaultdict(list)
        self.sizes: Dict[str, List[int]] = defaultdict(list)
        self.is_write: Dict[str, List[bool]] = defaultdict(list)
        self.response_times: Dict[str, List[float]] = defaultdict(list)

    def add(self, req: IORequest) -> None:
        v = req.volume
        self.timestamps[v].append(req.timestamp)
        self.offsets[v].append(req.offset)
        self.sizes[v].append(req.size)
        self.is_write[v].append(req.is_write)
        if self.with_response_times:
            self.response_times[v].append(
                req.response_time if req.response_time is not None else np.nan
            )

    def finalize(self, name: str) -> TraceDataset:
        dataset = TraceDataset(name)
        for v in self.timestamps:
            dataset.add(
                VolumeTrace(
                    v,
                    np.array(self.timestamps[v], dtype=np.float64),
                    np.array(self.offsets[v], dtype=np.int64),
                    np.array(self.sizes[v], dtype=np.int64),
                    np.array(self.is_write[v], dtype=bool),
                    np.array(self.response_times[v], dtype=np.float64)
                    if self.with_response_times
                    else None,
                )
            )
        return dataset


def _read_files(
    paths: Iterable[str],
    iter_fn: Callable[[str], Iterator[IORequest]],
    name: str,
    with_response_times: bool,
) -> TraceDataset:
    acc = _ColumnAccumulator(with_response_times)
    for path in paths:
        for req in iter_fn(path):
            acc.add(req)
    return acc.finalize(name)


def read_alicloud(paths, name: str = "AliCloud") -> TraceDataset:
    """Read one or more AliCloud-format files into a :class:`TraceDataset`."""
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    return _read_files([os.fspath(p) for p in paths], iter_alicloud_requests, name, False)


def read_msrc(paths, name: str = "MSRC") -> TraceDataset:
    """Read one or more MSRC-format files into a :class:`TraceDataset`."""
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    return _read_files([os.fspath(p) for p in paths], iter_msrc_requests, name, True)


def read_dataset_dir(directory: str, fmt: str = "alicloud", name: Optional[str] = None) -> TraceDataset:
    """Read every ``.csv``/``.csv.gz`` file in a directory as one dataset.

    Args:
        directory: directory containing trace files.
        fmt: ``"alicloud"`` or ``"msrc"``.
        name: dataset name; defaults to the directory basename.
    """
    files = sorted(
        os.path.join(directory, f)
        for f in os.listdir(directory)
        if f.endswith(".csv") or f.endswith(".csv.gz")
    )
    if not files:
        raise FileNotFoundError(f"no .csv or .csv.gz trace files in {directory!r}")
    dataset_name = name or os.path.basename(os.path.normpath(directory))
    if fmt == "alicloud":
        return read_alicloud(files, dataset_name)
    if fmt == "msrc":
        return read_msrc(files, dataset_name)
    raise ValueError(f"unknown trace format: {fmt!r} (expected 'alicloud' or 'msrc')")
