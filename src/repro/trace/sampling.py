"""Representative trace sampling (DiskAccel-style, paper ref [25]).

Trace-driven experiments on month-long traces are slow; Tarihi et al.'s
DiskAccel accelerates them by splitting the trace into fixed-length
intervals, extracting a feature vector per interval, clustering the
vectors, and replaying only one representative interval per cluster with
a weight proportional to its cluster size.  Metrics estimated from the
weighted sample approximate full-trace metrics at a fraction of the cost.

This module implements that pipeline for a single volume:

* :func:`interval_features` — per-interval feature vectors (request
  count, write fraction, mean size, mean |offset delta|, randomness),
* :func:`select_representatives` — k-means over standardized features,
  picking the interval nearest each centroid,
* :class:`SampledTrace` — the chosen intervals with replay weights, and
  a weighted request-count estimator for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.cluster.vq import kmeans2

from .dataset import VolumeTrace

__all__ = ["interval_features", "select_representatives", "SampledTrace"]


def interval_features(
    trace: VolumeTrace, interval: float, t0: Optional[float] = None, t1: Optional[float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-interval workload feature vectors.

    Returns ``(starts, features)``: interval start times and a matrix of
    shape ``(n_intervals, 5)`` with columns (request count, write
    fraction, mean request size, mean absolute offset delta, fraction of
    large offset jumps).  Empty intervals get all-zero rows.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    if len(trace) == 0:
        raise ValueError("cannot featurize an empty trace")
    lo = trace.start_time if t0 is None else t0
    hi = trace.end_time if t1 is None else t1
    n = max(1, int(np.ceil((hi - lo) / interval)))
    idx = np.minimum(((trace.timestamps - lo) / interval).astype(np.int64), n - 1)
    valid = (idx >= 0) & (trace.timestamps >= lo) & (trace.timestamps <= hi)
    idx = idx[valid]
    sizes = trace.sizes[valid]
    offsets = trace.offsets[valid]
    is_write = trace.is_write[valid]

    counts = np.bincount(idx, minlength=n).astype(np.float64)
    writes = np.bincount(idx, weights=is_write, minlength=n)
    size_sum = np.bincount(idx, weights=sizes, minlength=n)
    deltas = np.abs(np.diff(offsets, prepend=offsets[:1])).astype(np.float64)
    delta_sum = np.bincount(idx, weights=deltas, minlength=n)
    jumps = np.bincount(idx, weights=(deltas > 128 * 1024), minlength=n)

    safe = np.maximum(counts, 1.0)
    features = np.column_stack(
        [counts, writes / safe, size_sum / safe, delta_sum / safe, jumps / safe]
    )
    starts = lo + np.arange(n) * interval
    return starts, features


@dataclass(frozen=True)
class SampledTrace:
    """Representative intervals of one volume with replay weights."""

    volume_id: str
    interval: float
    #: start time of each representative interval
    representative_starts: np.ndarray
    #: replay weight (cluster size) of each representative
    weights: np.ndarray
    #: the sub-traces to replay
    intervals: List[VolumeTrace]
    #: total number of intervals in the full trace
    n_intervals: int

    @property
    def speedup(self) -> float:
        """Ratio of total intervals to replayed intervals."""
        return self.n_intervals / max(len(self.intervals), 1)

    def estimate_total_requests(self) -> float:
        """Weighted request-count estimate (validates the weighting)."""
        return float(
            sum(w * len(seg) for w, seg in zip(self.weights, self.intervals))
        )


def select_representatives(
    trace: VolumeTrace,
    interval: float,
    k: int = 8,
    seed: int = 0,
) -> SampledTrace:
    """Cluster intervals and keep one representative per cluster.

    Features are standardized before k-means; each cluster contributes
    the interval closest to its centroid, weighted by cluster size.
    ``k`` is clipped to the number of non-degenerate intervals.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    starts, features = interval_features(trace, interval)
    n = len(starts)
    k = min(k, n)
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    z = (features - mean) / std
    rng = np.random.default_rng(seed)
    # kmeans2 with explicit deterministic seeding; "points" init avoids
    # empty clusters on small inputs.
    centroids, labels = kmeans2(z, k, minit="points", seed=rng)
    reps: List[int] = []
    weights: List[float] = []
    for cluster in range(k):
        members = np.where(labels == cluster)[0]
        if len(members) == 0:
            continue
        dists = np.linalg.norm(z[members] - centroids[cluster], axis=1)
        reps.append(int(members[np.argmin(dists)]))
        weights.append(float(len(members)))
    order = np.argsort(reps)
    rep_idx = np.array(reps)[order]
    rep_weights = np.array(weights)[order]
    segments = [
        trace.time_slice(starts[i], starts[i] + interval) for i in rep_idx
    ]
    return SampledTrace(
        volume_id=trace.volume_id,
        interval=interval,
        representative_starts=starts[rep_idx],
        weights=rep_weights,
        intervals=segments,
        n_intervals=n,
    )
