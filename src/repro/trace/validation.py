"""Trace sanity checks.

Production trace files occasionally carry malformed rows (out-of-range
offsets, zero-length requests, clock steps backwards).  These checks let a
pipeline validate its input before analysis and surface everything wrong at
once instead of failing on the first bad metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .dataset import TraceDataset, VolumeTrace
from .record import SECTOR_SIZE

__all__ = ["ValidationIssue", "ValidationReport", "validate_volume", "validate_dataset"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a trace."""

    volume_id: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.volume_id}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All problems found in a dataset; empty means the trace is clean."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def raise_if_invalid(self) -> None:
        if not self.ok:
            detail = "\n".join(str(i) for i in self.issues[:20])
            more = len(self.issues) - 20
            if more > 0:
                detail += f"\n... and {more} more"
            raise ValueError(f"trace validation failed:\n{detail}")

    def extend(self, other: "ValidationReport") -> None:
        self.issues.extend(other.issues)


def validate_volume(trace: VolumeTrace, check_alignment: bool = False) -> ValidationReport:
    """Validate one volume trace.

    Checks: non-decreasing timestamps, non-negative offsets, positive sizes,
    requests within capacity (when capacity is known), and optionally sector
    alignment of offsets and sizes.
    """
    report = ValidationReport()
    vid = trace.volume_id

    def issue(code: str, message: str) -> None:
        report.issues.append(ValidationIssue(vid, code, message))

    n = len(trace)
    if n == 0:
        return report
    if np.any(np.diff(trace.timestamps) < 0):
        bad = int(np.argmax(np.diff(trace.timestamps) < 0))
        issue("unsorted-timestamps", f"timestamp decreases at row {bad + 1}")
    if np.any(trace.offsets < 0):
        issue("negative-offset", f"{int(np.count_nonzero(trace.offsets < 0))} rows")
    if np.any(trace.sizes <= 0):
        issue("non-positive-size", f"{int(np.count_nonzero(trace.sizes <= 0))} rows")
    if trace.capacity is not None:
        over = trace.offsets + trace.sizes > trace.capacity
        if np.any(over):
            issue(
                "beyond-capacity",
                f"{int(np.count_nonzero(over))} rows extend past capacity "
                f"{trace.capacity}",
            )
    if check_alignment:
        misaligned_off = int(np.count_nonzero(trace.offsets % SECTOR_SIZE))
        misaligned_size = int(np.count_nonzero(trace.sizes % SECTOR_SIZE))
        if misaligned_off:
            issue("unaligned-offset", f"{misaligned_off} rows not {SECTOR_SIZE}-byte aligned")
        if misaligned_size:
            issue("unaligned-size", f"{misaligned_size} rows not {SECTOR_SIZE}-byte aligned")
    return report


def validate_dataset(dataset: TraceDataset, check_alignment: bool = False) -> ValidationReport:
    """Validate every volume in a dataset and concatenate the findings."""
    report = ValidationReport()
    for trace in dataset.volumes():
        report.extend(validate_volume(trace, check_alignment=check_alignment))
    return report
