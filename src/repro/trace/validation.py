"""Trace sanity checks.

Production trace files occasionally carry malformed rows (out-of-range
offsets, zero-length requests, clock steps backwards).  These checks let a
pipeline validate its input before analysis and surface everything wrong at
once instead of failing on the first bad metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from .dataset import TraceDataset, VolumeTrace
from .record import SECTOR_SIZE

if TYPE_CHECKING:
    from ..store import StoreConfig

__all__ = [
    "ValidationIssue",
    "ValidationReport",
    "validate_volume",
    "validate_dataset",
    "validate_trace_dir",
]

#: Max per-line parse issues surfaced by :func:`validate_trace_dir`
#: (exact totals are always reported; this only bounds the detail lines).
_MAX_PARSE_ISSUES = 20


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a trace."""

    volume_id: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.volume_id}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All problems found in a dataset; empty means the trace is clean."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def raise_if_invalid(self) -> None:
        if not self.ok:
            detail = "\n".join(str(i) for i in self.issues[:20])
            more = len(self.issues) - 20
            if more > 0:
                detail += f"\n... and {more} more"
            raise ValueError(f"trace validation failed:\n{detail}")

    def extend(self, other: "ValidationReport") -> None:
        self.issues.extend(other.issues)


def validate_volume(trace: VolumeTrace, check_alignment: bool = False) -> ValidationReport:
    """Validate one volume trace.

    Checks: non-decreasing timestamps, non-negative offsets, positive sizes,
    requests within capacity (when capacity is known), and optionally sector
    alignment of offsets and sizes.
    """
    report = ValidationReport()
    vid = trace.volume_id

    def issue(code: str, message: str) -> None:
        report.issues.append(ValidationIssue(vid, code, message))

    n = len(trace)
    if n == 0:
        return report
    if np.any(np.diff(trace.timestamps) < 0):
        bad = int(np.argmax(np.diff(trace.timestamps) < 0))
        issue("unsorted-timestamps", f"timestamp decreases at row {bad + 1}")
    if np.any(trace.offsets < 0):
        issue("negative-offset", f"{int(np.count_nonzero(trace.offsets < 0))} rows")
    if np.any(trace.sizes <= 0):
        issue("non-positive-size", f"{int(np.count_nonzero(trace.sizes <= 0))} rows")
    if trace.capacity is not None:
        over = trace.offsets + trace.sizes > trace.capacity
        if np.any(over):
            issue(
                "beyond-capacity",
                f"{int(np.count_nonzero(over))} rows extend past capacity "
                f"{trace.capacity}",
            )
    if check_alignment:
        misaligned_off = int(np.count_nonzero(trace.offsets % SECTOR_SIZE))
        misaligned_size = int(np.count_nonzero(trace.sizes % SECTOR_SIZE))
        if misaligned_off:
            issue("unaligned-offset", f"{misaligned_off} rows not {SECTOR_SIZE}-byte aligned")
        if misaligned_size:
            issue("unaligned-size", f"{misaligned_size} rows not {SECTOR_SIZE}-byte aligned")
    return report


def validate_dataset(dataset: TraceDataset, check_alignment: bool = False) -> ValidationReport:
    """Validate every volume in a dataset and concatenate the findings."""
    report = ValidationReport()
    for trace in dataset.volumes():
        report.extend(validate_volume(trace, check_alignment=check_alignment))
    return report


def validate_trace_dir(
    directory: str,
    fmt: str = "alicloud",
    check_alignment: bool = False,
    chunk_size: Optional[int] = None,
    workers: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    store: Optional["StoreConfig"] = None,
) -> ValidationReport:
    """Preflight an on-disk trace directory before analysis.

    Parses every file under the ``quarantine`` error policy — so one
    malformed row becomes a finding instead of aborting the sweep — then
    runs the per-volume content checks (:func:`validate_dataset`) on
    everything that parsed.  Findings come back as one report:

    * ``malformed-line`` — a row the parser rejected (file basename as
      the volume id), at most ``_MAX_PARSE_ISSUES`` detail lines;
    * ``malformed-lines`` — the remainder count when a dirty directory
      exceeds the detail budget;
    * ``unit-failed`` — a file that could not be processed at all;
    * ``store-stale`` — with ``store``: a store entry that no longer
      mirrors its source file (the stale entry is *not* served);
    * plus every :func:`validate_volume` code on the parsed volumes.

    With ``store``, files whose entries are fresh are read from the
    memory-mapped store (manifest fault ledgers included) instead of
    re-parsing text; everything else falls back to the text path.
    """
    import os

    from ..engine.chunks import DEFAULT_CHUNK_SIZE, read_dataset_dir_chunked
    from ..resilience import ON_ERROR_QUARANTINE, RunErrors

    report = ValidationReport()
    if store is not None:
        from ..engine.chunks import list_trace_files
        from ..store import ENTRY_STALE, entry_status

        for path in list_trace_files(directory):
            status, _entry = entry_status(path, store, fmt)
            if status == ENTRY_STALE:
                report.issues.append(
                    ValidationIssue(
                        os.path.basename(path),
                        "store-stale",
                        "store entry no longer matches the source file; "
                        "re-run 'repro ingest'",
                    )
                )
    errors = RunErrors(policy=ON_ERROR_QUARANTINE)
    dataset = read_dataset_dir_chunked(
        directory,
        fmt=fmt,
        chunk_size=chunk_size if chunk_size is not None else DEFAULT_CHUNK_SIZE,
        workers=workers,
        progress=progress,
        on_error=ON_ERROR_QUARANTINE,
        errors=errors,
        store=store,
    )
    detail = errors.quarantine_sample[:_MAX_PARSE_ISSUES]
    for record in detail:
        report.issues.append(
            ValidationIssue(
                os.path.basename(record.file), "malformed-line", record.reason
            )
        )
    remainder = errors.quarantined_lines - len(detail)
    if remainder > 0:
        report.issues.append(
            ValidationIssue(
                "*", "malformed-lines", f"{remainder} further malformed lines"
            )
        )
    for failure in errors.failed_units:
        report.issues.append(
            ValidationIssue(
                failure.unit,
                "unit-failed",
                f"{failure.error} (after {failure.attempts} attempts)",
            )
        )
    report.extend(validate_dataset(dataset, check_alignment=check_alignment))
    return report
