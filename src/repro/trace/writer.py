"""Trace file writers (round-trip counterparts of :mod:`repro.trace.reader`)."""

from __future__ import annotations

import gzip
import io
import os
from typing import TextIO

import numpy as np

from .dataset import TraceDataset

__all__ = ["write_alicloud", "write_msrc", "write_dataset_dir"]

_FILETIME_TICKS_PER_SECOND = 10_000_000
_MICROSECONDS_PER_SECOND = 1_000_000


def _open_for_write(path: str) -> TextIO:
    if path.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _merged_rows(dataset: TraceDataset):
    """Yield (timestamp, volume_id, row_index, trace) across volumes in time order."""
    entries = []
    for trace in dataset.volumes():
        for i in range(len(trace)):
            entries.append((trace.timestamps[i], trace.volume_id, i, trace))
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return entries


def write_alicloud(dataset: TraceDataset, path: str) -> None:
    """Write a dataset in the released AliCloud CSV format.

    Rows across all volumes are merged into global timestamp order, matching
    how the production collector emitted them.
    """
    with _open_for_write(path) as fh:
        for ts, vol, i, trace in _merged_rows(dataset):
            op = "W" if trace.is_write[i] else "R"
            fh.write(
                f"{vol},{op},{int(trace.offsets[i])},{int(trace.sizes[i])},"
                f"{int(round(ts * _MICROSECONDS_PER_SECOND))}\n"
            )


def write_msrc(dataset: TraceDataset, path: str) -> None:
    """Write a dataset in the MSRC (SNIA) CSV format.

    Volume ids must look like ``hostname_disk`` (e.g. ``src1_0``); missing
    response times are written as 0 ticks.
    """
    with _open_for_write(path) as fh:
        for ts, vol, i, trace in _merged_rows(dataset):
            host, sep, disk = vol.rpartition("_")
            if not sep or not disk.isdigit():
                raise ValueError(
                    f"MSRC volume ids must be 'hostname_disk', got {vol!r}"
                )
            op = "Write" if trace.is_write[i] else "Read"
            rt = 0.0
            if trace.response_times is not None and not np.isnan(trace.response_times[i]):
                rt = float(trace.response_times[i])
            fh.write(
                f"{int(round(ts * _FILETIME_TICKS_PER_SECOND))},{host},{int(disk)},{op},"
                f"{int(trace.offsets[i])},{int(trace.sizes[i])},"
                f"{int(round(rt * _FILETIME_TICKS_PER_SECOND))}\n"
            )


def write_dataset_dir(
    dataset: TraceDataset, directory: str, fmt: str = "alicloud", compress: bool = False
) -> None:
    """Write each volume to ``<directory>/<volume>.csv[.gz]`` in ``fmt``."""
    os.makedirs(directory, exist_ok=True)
    suffix = ".csv.gz" if compress else ".csv"
    for trace in dataset.volumes():
        single = TraceDataset(dataset.name, {trace.volume_id: trace})
        path = os.path.join(directory, f"{trace.volume_id}{suffix}")
        if fmt == "alicloud":
            write_alicloud(single, path)
        elif fmt == "msrc":
            write_msrc(single, path)
        else:
            raise ValueError(f"unknown trace format: {fmt!r}")
