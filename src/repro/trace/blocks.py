"""Request-to-block mapping.

The paper's spatial and temporal metrics operate at block granularity
(default 4 KiB): working sets, read-/write-mostly classification,
RAW/WAW/RAR/WAR transitions, and cache simulation all reason about the
fixed-size blocks a request touches.  This module converts columnar request
arrays into per-(request, block) event arrays, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .dataset import VolumeTrace
from .record import DEFAULT_BLOCK_SIZE

__all__ = [
    "block_range",
    "expand_to_blocks",
    "BlockEvents",
    "block_events",
    "unique_blocks",
    "working_set_size",
    "block_traffic",
]


def block_range(offset: int, size: int, block_size: int = DEFAULT_BLOCK_SIZE) -> Tuple[int, int]:
    """First block index and number of blocks touched by a request."""
    if size <= 0:
        raise ValueError("size must be positive")
    first = offset // block_size
    last = (offset + size - 1) // block_size
    return first, last - first + 1


def expand_to_blocks(
    offsets: np.ndarray,
    sizes: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand requests into per-block touches.

    Returns ``(req_index, block_id, nbytes)`` arrays where row *k* says
    request ``req_index[k]`` touches block ``block_id[k]`` with
    ``nbytes[k]`` bytes (partial at the first/last block of an unaligned
    request).  Rows are ordered by request then ascending block.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    n = len(offsets)
    if n == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    first = offsets // block_size
    last = (offsets + sizes - 1) // block_size
    counts = last - first + 1
    total = int(counts.sum())
    req_index = np.repeat(np.arange(n, dtype=np.int64), counts)
    # Concatenated per-request aranges: position within each request's span.
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    block_id = np.repeat(first, counts) + within
    # Byte attribution: intersection of [offset, offset+size) with each block.
    block_lo = block_id * block_size
    block_hi = block_lo + block_size
    req_lo = np.repeat(offsets, counts)
    req_hi = req_lo + np.repeat(sizes, counts)
    nbytes = np.minimum(block_hi, req_hi) - np.maximum(block_lo, req_lo)
    return req_index, block_id, nbytes


@dataclass(frozen=True)
class BlockEvents:
    """Per-(request, block) touch events of one volume, in request order.

    Attributes:
        block_id: block index touched.
        timestamps: arrival time of the owning request.
        is_write: op type of the owning request.
        nbytes: bytes of the request falling inside the block.
        req_index: row index of the owning request in the source trace.
        block_size: block granularity used for the expansion.
    """

    block_id: np.ndarray
    timestamps: np.ndarray
    is_write: np.ndarray
    nbytes: np.ndarray
    req_index: np.ndarray
    block_size: int

    def __len__(self) -> int:
        return len(self.block_id)

    def reads(self) -> "BlockEvents":
        return self._select(~self.is_write)

    def writes(self) -> "BlockEvents":
        return self._select(self.is_write)

    def _select(self, mask: np.ndarray) -> "BlockEvents":
        return BlockEvents(
            self.block_id[mask],
            self.timestamps[mask],
            self.is_write[mask],
            self.nbytes[mask],
            self.req_index[mask],
            self.block_size,
        )


def block_events(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> BlockEvents:
    """Expand a volume trace into time-ordered :class:`BlockEvents`."""
    req_index, block_id, nbytes = expand_to_blocks(trace.offsets, trace.sizes, block_size)
    return BlockEvents(
        block_id=block_id,
        timestamps=trace.timestamps[req_index],
        is_write=trace.is_write[req_index],
        nbytes=nbytes,
        req_index=req_index,
        block_size=block_size,
    )


def unique_blocks(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Sorted array of distinct block ids touched by the trace."""
    _, block_id, _ = expand_to_blocks(trace.offsets, trace.sizes, block_size)
    return np.unique(block_id)


def working_set_size(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Working set size in bytes: #distinct blocks touched x block size."""
    return len(unique_blocks(trace, block_size)) * block_size


def block_traffic(
    trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-block read and write traffic.

    Returns ``(blocks, read_bytes, write_bytes)`` where ``blocks`` is the
    sorted distinct block ids and the byte arrays give each block's total
    read and write traffic.
    """
    ev = block_events(trace, block_size)
    if len(ev) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    blocks, inverse = np.unique(ev.block_id, return_inverse=True)
    read_bytes = np.bincount(
        inverse[~ev.is_write], weights=ev.nbytes[~ev.is_write], minlength=len(blocks)
    ).astype(np.int64)
    write_bytes = np.bincount(
        inverse[ev.is_write], weights=ev.nbytes[ev.is_write], minlength=len(blocks)
    ).astype(np.int64)
    return blocks, read_bytes, write_bytes
