"""Block-level I/O trace data model, file formats, filters, and validation."""

from .blocks import (
    BlockEvents,
    block_events,
    block_range,
    block_traffic,
    expand_to_blocks,
    unique_blocks,
    working_set_size,
)
from .dataset import TraceDataset, VolumeTrace
from .filters import (
    filter_time_range,
    filter_volumes,
    reads_only,
    rebase_timestamps,
    split_days,
    top_traffic_volume_ids,
    writes_only,
)
from .reader import (
    TraceFormatError,
    iter_alicloud_requests,
    iter_msrc_requests,
    read_alicloud,
    read_dataset_dir,
    read_msrc,
)
from .record import DEFAULT_BLOCK_SIZE, SECTOR_SIZE, IORequest, OpType
from .sampling import SampledTrace, interval_features, select_representatives
from .validation import (
    ValidationIssue,
    ValidationReport,
    validate_dataset,
    validate_trace_dir,
    validate_volume,
)
from .writer import write_alicloud, write_dataset_dir, write_msrc

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "SECTOR_SIZE",
    "IORequest",
    "OpType",
    "TraceDataset",
    "VolumeTrace",
    "TraceFormatError",
    "iter_alicloud_requests",
    "iter_msrc_requests",
    "read_alicloud",
    "read_msrc",
    "read_dataset_dir",
    "write_alicloud",
    "write_msrc",
    "write_dataset_dir",
    "filter_volumes",
    "filter_time_range",
    "reads_only",
    "writes_only",
    "rebase_timestamps",
    "split_days",
    "top_traffic_volume_ids",
    "ValidationIssue",
    "ValidationReport",
    "validate_volume",
    "validate_dataset",
    "validate_trace_dir",
    "SampledTrace",
    "interval_features",
    "select_representatives",
    "BlockEvents",
    "block_events",
    "block_range",
    "block_traffic",
    "expand_to_blocks",
    "unique_blocks",
    "working_set_size",
]
