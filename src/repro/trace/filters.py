"""Dataset and volume filtering/transformation utilities."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from .dataset import TraceDataset, VolumeTrace

__all__ = [
    "filter_volumes",
    "filter_time_range",
    "reads_only",
    "writes_only",
    "split_days",
    "rebase_timestamps",
    "top_traffic_volume_ids",
]


def filter_volumes(
    dataset: TraceDataset, predicate: Callable[[VolumeTrace], bool], name: Optional[str] = None
) -> TraceDataset:
    """New dataset keeping only volumes for which ``predicate`` is True."""
    kept = {v.volume_id: v for v in dataset.volumes() if predicate(v)}
    return TraceDataset(name or dataset.name, kept)


def filter_time_range(
    dataset: TraceDataset, t0: float, t1: float, name: Optional[str] = None
) -> TraceDataset:
    """Restrict every volume to requests with ``t0 <= timestamp < t1``.

    Volumes left empty by the cut are kept (they still count as volumes,
    matching how the paper counts inactive volumes).
    """
    out = TraceDataset(name or dataset.name)
    for trace in dataset.volumes():
        out.add(trace.time_slice(t0, t1))
    return out


def reads_only(dataset: TraceDataset, name: Optional[str] = None) -> TraceDataset:
    """Dataset with write requests removed (the paper's Finding 7 cut)."""
    out = TraceDataset(name or f"{dataset.name}-reads")
    for trace in dataset.volumes():
        out.add(trace.reads())
    return out


def writes_only(dataset: TraceDataset, name: Optional[str] = None) -> TraceDataset:
    """Dataset with read requests removed."""
    out = TraceDataset(name or f"{dataset.name}-writes")
    for trace in dataset.volumes():
        out.add(trace.writes())
    return out


def rebase_timestamps(dataset: TraceDataset, origin: Optional[float] = None) -> TraceDataset:
    """Shift all timestamps so the dataset starts at zero (or ``origin``)."""
    base = dataset.start_time if origin is None else origin
    out = TraceDataset(dataset.name)
    for trace in dataset.volumes():
        out.add(
            VolumeTrace(
                trace.volume_id,
                trace.timestamps - base,
                trace.offsets,
                trace.sizes,
                trace.is_write,
                trace.response_times,
                trace.capacity,
                presorted=True,
            )
        )
    return out


def split_days(
    dataset: TraceDataset, day_seconds: float = 86400.0, origin: Optional[float] = None
) -> List[Tuple[int, TraceDataset]]:
    """Split a dataset into per-day datasets.

    Returns ``(day_index, dataset)`` pairs covering the full span; days are
    counted from ``origin`` (default: dataset start time).
    """
    base = dataset.start_time if origin is None else origin
    end = dataset.end_time
    n_days = max(1, int(np.ceil((end - base) / day_seconds)))
    if end > base and (end - base) % day_seconds == 0:
        n_days = int((end - base) / day_seconds) + 1
    out = []
    for day in range(n_days):
        t0 = base + day * day_seconds
        t1 = t0 + day_seconds
        out.append((day, filter_time_range(dataset, t0, t1, f"{dataset.name}-day{day}")))
    return out


def top_traffic_volume_ids(dataset: TraceDataset, k: int = 10) -> List[str]:
    """Ids of the ``k`` volumes with the most total I/O traffic (descending)."""
    ranked = sorted(dataset.volumes(), key=lambda v: v.total_bytes, reverse=True)
    return [v.volume_id for v in ranked[:k]]
