"""Core record types for block-level I/O traces.

A trace is a time-ordered sequence of :class:`IORequest` records, each
describing one block-level read or write issued by a volume.  These types
mirror the fields recorded by the AliCloud traces released with the paper
(volume id, opcode, offset, length, timestamp); the MSRC traces carry the
same fields plus a response time, which we preserve when available.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["OpType", "IORequest", "SECTOR_SIZE", "DEFAULT_BLOCK_SIZE"]

#: Granularity at which devices address data; offsets/sizes in real traces
#: are multiples of this.
SECTOR_SIZE = 512

#: Default block granularity (bytes) used for block-level metrics (working
#: sets, read-/write-mostly classification, cache simulation).  4 KiB is the
#: conventional choice for flash-backed cloud block storage.
DEFAULT_BLOCK_SIZE = 4096


class OpType(enum.Enum):
    """I/O request type."""

    READ = "R"
    WRITE = "W"

    @classmethod
    def parse(cls, token: str) -> "OpType":
        """Parse an opcode token from a trace file.

        Accepts the single-letter AliCloud opcodes (``R``/``W``) and the
        MSRC words (``Read``/``Write``), case-insensitively.

        Raises:
            ValueError: if the token is not a recognized opcode.
        """
        t = token.strip().upper()
        if t in ("R", "READ"):
            return cls.READ
        if t in ("W", "WRITE"):
            return cls.WRITE
        raise ValueError(f"unrecognized opcode: {token!r}")

    @property
    def is_write(self) -> bool:
        return self is OpType.WRITE


@dataclass(frozen=True)
class IORequest:
    """One block-level I/O request.

    Attributes:
        volume: identifier of the volume (virtual disk) issuing the request.
        op: request type (read or write).
        offset: starting byte offset within the volume.
        size: request length in bytes (strictly positive).
        timestamp: arrival time in seconds (float, trace-relative or epoch).
        response_time: optional service time in seconds (MSRC records it;
            AliCloud does not).
    """

    volume: str
    op: OpType
    offset: int
    size: int
    timestamp: float
    response_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset: {self.offset}")
        if self.size <= 0:
            raise ValueError(f"non-positive size: {self.size}")

    @property
    def end_offset(self) -> int:
        """Exclusive end byte offset of the request."""
        return self.offset + self.size

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ
