"""Columnar containers for block-level I/O traces.

:class:`VolumeTrace` stores one volume's requests as parallel numpy arrays
sorted by timestamp, which keeps multi-million-request analyses vectorized.
:class:`TraceDataset` groups the volumes of one collection (e.g. the
AliCloud fleet) and provides fleet-level accessors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .record import IORequest, OpType

__all__ = ["VolumeTrace", "TraceDataset"]


class VolumeTrace:
    """All requests of a single volume, in columnar time order.

    The canonical construction paths are :meth:`from_requests` (row
    records) and :meth:`from_arrays` (already-columnar data).  Arrays are
    copied defensively only when they need sorting or dtype conversion.

    Attributes:
        volume_id: identifier of the volume.
        capacity: advertised volume capacity in bytes, if known.
        timestamps: float64 array of arrival times (seconds), non-decreasing.
        offsets: int64 array of starting byte offsets.
        sizes: int64 array of request lengths in bytes.
        is_write: bool array, True for writes.
        response_times: optional float64 array of service times (seconds).
    """

    __slots__ = (
        "volume_id",
        "capacity",
        "timestamps",
        "offsets",
        "sizes",
        "is_write",
        "response_times",
    )

    def __init__(
        self,
        volume_id: str,
        timestamps: np.ndarray,
        offsets: np.ndarray,
        sizes: np.ndarray,
        is_write: np.ndarray,
        response_times: Optional[np.ndarray] = None,
        capacity: Optional[int] = None,
        *,
        presorted: bool = False,
    ) -> None:
        timestamps = np.asarray(timestamps, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        n = len(timestamps)
        if not (len(offsets) == len(sizes) == len(is_write) == n):
            raise ValueError("column arrays must have equal length")
        if response_times is not None:
            response_times = np.asarray(response_times, dtype=np.float64)
            if len(response_times) != n:
                raise ValueError("response_times length mismatch")
        if n and np.any(sizes <= 0):
            raise ValueError("all request sizes must be positive")
        if n and np.any(offsets < 0):
            raise ValueError("all offsets must be non-negative")
        if not presorted and n and np.any(np.diff(timestamps) < 0):
            order = np.argsort(timestamps, kind="stable")
            timestamps = timestamps[order]
            offsets = offsets[order]
            sizes = sizes[order]
            is_write = is_write[order]
            if response_times is not None:
                response_times = response_times[order]
        self.volume_id = volume_id
        self.capacity = capacity
        self.timestamps = timestamps
        self.offsets = offsets
        self.sizes = sizes
        self.is_write = is_write
        self.response_times = response_times

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_requests(
        cls,
        volume_id: str,
        requests: Iterable[IORequest],
        capacity: Optional[int] = None,
    ) -> "VolumeTrace":
        """Build a trace from row records (all must belong to ``volume_id``)."""
        reqs = list(requests)
        for r in reqs:
            if r.volume != volume_id:
                raise ValueError(
                    f"request for volume {r.volume!r} passed to trace {volume_id!r}"
                )
        has_rt = any(r.response_time is not None for r in reqs)
        response_times = None
        if has_rt:
            response_times = np.array(
                [r.response_time if r.response_time is not None else np.nan for r in reqs],
                dtype=np.float64,
            )
        return cls(
            volume_id,
            np.array([r.timestamp for r in reqs], dtype=np.float64),
            np.array([r.offset for r in reqs], dtype=np.int64),
            np.array([r.size for r in reqs], dtype=np.int64),
            np.array([r.is_write for r in reqs], dtype=bool),
            response_times,
            capacity,
        )

    @classmethod
    def from_arrays(
        cls,
        volume_id: str,
        timestamps: Sequence[float],
        offsets: Sequence[int],
        sizes: Sequence[int],
        is_write: Sequence[bool],
        response_times: Optional[Sequence[float]] = None,
        capacity: Optional[int] = None,
    ) -> "VolumeTrace":
        """Build a trace from columnar data (sorted by timestamp if needed)."""
        return cls(
            volume_id,
            np.asarray(timestamps),
            np.asarray(offsets),
            np.asarray(sizes),
            np.asarray(is_write),
            None if response_times is None else np.asarray(response_times),
            capacity,
        )

    @classmethod
    def empty(cls, volume_id: str, capacity: Optional[int] = None) -> "VolumeTrace":
        """An empty trace (no requests)."""
        z = np.array([], dtype=np.float64)
        return cls(volume_id, z, z.astype(np.int64), z.astype(np.int64), z.astype(bool), None, capacity)

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def n_requests(self) -> int:
        return len(self.timestamps)

    @property
    def n_reads(self) -> int:
        return int(np.count_nonzero(~self.is_write))

    @property
    def n_writes(self) -> int:
        return int(np.count_nonzero(self.is_write))

    @property
    def read_bytes(self) -> int:
        """Total bytes read (read traffic)."""
        return int(self.sizes[~self.is_write].sum())

    @property
    def write_bytes(self) -> int:
        """Total bytes written (write traffic)."""
        return int(self.sizes[self.is_write].sum())

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    @property
    def start_time(self) -> float:
        if not len(self):
            raise ValueError("empty trace has no start time")
        return float(self.timestamps[0])

    @property
    def end_time(self) -> float:
        if not len(self):
            raise ValueError("empty trace has no end time")
        return float(self.timestamps[-1])

    @property
    def duration(self) -> float:
        """Elapsed time between first and last request (seconds)."""
        return self.end_time - self.start_time

    # -- views & slices ----------------------------------------------------

    def select(self, mask: np.ndarray) -> "VolumeTrace":
        """New trace containing only rows where ``mask`` is True."""
        return VolumeTrace(
            self.volume_id,
            self.timestamps[mask],
            self.offsets[mask],
            self.sizes[mask],
            self.is_write[mask],
            None if self.response_times is None else self.response_times[mask],
            self.capacity,
            presorted=True,
        )

    def reads(self) -> "VolumeTrace":
        """Sub-trace of read requests only."""
        return self.select(~self.is_write)

    def writes(self) -> "VolumeTrace":
        """Sub-trace of write requests only."""
        return self.select(self.is_write)

    def time_slice(self, t0: float, t1: float) -> "VolumeTrace":
        """Sub-trace of requests with ``t0 <= timestamp < t1``."""
        lo = int(np.searchsorted(self.timestamps, t0, side="left"))
        hi = int(np.searchsorted(self.timestamps, t1, side="left"))
        return self.select(slice(lo, hi))

    def iter_requests(self) -> Iterator[IORequest]:
        """Yield row records (slow path; prefer the column arrays)."""
        rt = self.response_times
        for i in range(len(self)):
            yield IORequest(
                volume=self.volume_id,
                op=OpType.WRITE if self.is_write[i] else OpType.READ,
                offset=int(self.offsets[i]),
                size=int(self.sizes[i]),
                timestamp=float(self.timestamps[i]),
                response_time=None if rt is None or np.isnan(rt[i]) else float(rt[i]),
            )

    def __repr__(self) -> str:
        return (
            f"VolumeTrace({self.volume_id!r}, n={len(self)}, "
            f"reads={self.n_reads}, writes={self.n_writes})"
        )


class TraceDataset:
    """A named collection of volume traces (one production fleet).

    Behaves as a mapping from volume id to :class:`VolumeTrace` with
    fleet-level convenience accessors used throughout the analysis.
    """

    def __init__(self, name: str, volumes: Optional[Mapping[str, VolumeTrace]] = None) -> None:
        self.name = name
        self._volumes: Dict[str, VolumeTrace] = dict(volumes or {})

    # -- mapping protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._volumes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._volumes)

    def __contains__(self, volume_id: str) -> bool:
        return volume_id in self._volumes

    def __getitem__(self, volume_id: str) -> VolumeTrace:
        return self._volumes[volume_id]

    def add(self, trace: VolumeTrace) -> None:
        """Add a volume trace; volume ids must be unique within a dataset."""
        if trace.volume_id in self._volumes:
            raise ValueError(f"duplicate volume id: {trace.volume_id!r}")
        self._volumes[trace.volume_id] = trace

    def volume_ids(self) -> List[str]:
        return list(self._volumes)

    def volumes(self) -> List[VolumeTrace]:
        return list(self._volumes.values())

    def items(self) -> Iterable[Tuple[str, VolumeTrace]]:
        return self._volumes.items()

    def non_empty_volumes(self) -> List[VolumeTrace]:
        """Volumes with at least one request."""
        return [v for v in self._volumes.values() if len(v)]

    # -- fleet-level statistics ----------------------------------------------

    @property
    def n_volumes(self) -> int:
        return len(self._volumes)

    @property
    def n_requests(self) -> int:
        return sum(len(v) for v in self._volumes.values())

    @property
    def n_reads(self) -> int:
        return sum(v.n_reads for v in self._volumes.values())

    @property
    def n_writes(self) -> int:
        return sum(v.n_writes for v in self._volumes.values())

    @property
    def read_bytes(self) -> int:
        return sum(v.read_bytes for v in self._volumes.values())

    @property
    def write_bytes(self) -> int:
        return sum(v.write_bytes for v in self._volumes.values())

    @property
    def total_bytes(self) -> int:
        return sum(v.total_bytes for v in self._volumes.values())

    @property
    def start_time(self) -> float:
        vols = self.non_empty_volumes()
        if not vols:
            raise ValueError("dataset has no requests")
        return min(v.start_time for v in vols)

    @property
    def end_time(self) -> float:
        vols = self.non_empty_volumes()
        if not vols:
            raise ValueError("dataset has no requests")
        return max(v.end_time for v in vols)

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def subset(self, volume_ids: Iterable[str], name: Optional[str] = None) -> "TraceDataset":
        """New dataset restricted to the given volume ids."""
        ids = list(volume_ids)
        missing = [i for i in ids if i not in self._volumes]
        if missing:
            raise KeyError(f"unknown volume ids: {missing}")
        return TraceDataset(name or self.name, {i: self._volumes[i] for i in ids})

    def __repr__(self) -> str:
        return (
            f"TraceDataset({self.name!r}, volumes={self.n_volumes}, "
            f"requests={self.n_requests})"
        )
