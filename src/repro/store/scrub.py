"""Store integrity: scrub entries, detect bit rot, upgrade old manifests.

An mmap-served store is only as trustworthy as its bytes: a flipped bit
in a ``.npy`` segment would flow straight into results with no parser in
the path to notice.  v3 manifests therefore persist each segment's byte
size and sha256 at build time, and this module is the verification
surface over them:

* :func:`verify_entry` — check one entry's segments against its
  manifest: presence and size always, full sha256 re-hash with
  ``deep=True``.  Size/presence checks catch truncation and lost files
  cheaply; only a deep scrub catches a size-preserving flip.
* :func:`scrub_store` — walk a whole store directory (``repro store
  verify``): per-entry status (ok / stale / corrupt / source-missing),
  leftover temp and quarantine directories, a JSON-ready report.
* :func:`upgrade_entry` / :func:`load_current_manifest` — in-place
  v2 → v3 manifest upgrade: the segment layout did not change, so an old
  entry whose source still matches gets hashes computed from its existing
  segments and its manifest atomically rewritten, instead of a full
  re-parse.  The *first reader to touch* an old entry upgrades it.

Quarantine-and-self-heal for entries found corrupt while serving lives in
:mod:`repro.store.reader` (:func:`~repro.store.reader.try_serve` with
``StoreConfig.verify``); this module only ever reads and rewrites
manifests — segments are never modified.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..obs import metrics
from ..obs.logging import get_logger
from .manifest import (
    MANIFEST_NAME,
    PARSER_VERSION,
    STORE_FORMAT_VERSION,
    UPGRADEABLE_VERSIONS,
    Manifest,
    segment_files,
)

__all__ = [
    "EntryIssue",
    "EntryReport",
    "ScrubReport",
    "file_sha256",
    "verify_entry",
    "upgrade_entry",
    "load_current_manifest",
    "scrub_store",
]

_log = get_logger("repro.store")

_HASH_CHUNK = 1 << 20  # 1 MiB reads: bounded memory at any segment size


def file_sha256(path: str) -> str:
    """The sha256 hex digest of a file's bytes (chunked, constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_HASH_CHUNK)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


@dataclass(frozen=True)
class EntryIssue:
    """One integrity defect found in a store entry."""

    kind: str  # "segment-missing" | "segment-size" | "segment-hash"
    #           | "segment-unhashed" | "format-version"
    segment: Optional[str]
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def verify_entry(entry: str, manifest: Manifest, deep: bool = False) -> List[EntryIssue]:
    """Integrity issues of one entry (empty list = clean).

    The default pass checks every expected segment exists with its
    recorded byte size; ``deep`` additionally re-hashes each segment and
    compares sha256.  A pre-v3 manifest that was never upgraded reports
    ``segment-unhashed`` per segment under ``deep`` (nothing to compare
    against) — not silently "clean".
    """
    issues: List[EntryIssue] = []
    for name in segment_files(manifest):
        path = os.path.join(entry, name)
        if not os.path.isfile(path):
            issues.append(EntryIssue("segment-missing", name, f"{name} does not exist"))
            continue
        expected_size = manifest.column_bytes.get(name)
        actual_size = os.path.getsize(path)
        if expected_size is not None and actual_size != expected_size:
            issues.append(
                EntryIssue(
                    "segment-size", name,
                    f"{name} is {actual_size} bytes, manifest says {expected_size}",
                )
            )
            continue
        if not deep:
            continue
        expected_hash = manifest.column_hashes.get(name)
        if expected_hash is None:
            issues.append(
                EntryIssue(
                    "segment-unhashed", name,
                    f"{name} has no recorded sha256 (pre-v3 entry; re-ingest or serve "
                    f"once to upgrade)",
                )
            )
            continue
        actual_hash = file_sha256(path)
        if actual_hash != expected_hash:
            issues.append(
                EntryIssue(
                    "segment-hash", name,
                    f"{name} sha256 {actual_hash[:12]}… != manifest {expected_hash[:12]}…",
                )
            )
    return issues


def upgrade_entry(entry: str, manifest: Manifest, path: str) -> Optional[Manifest]:
    """Upgrade a v2 entry's manifest to v3 in place; None when not possible.

    Safe only when the segment layout is unchanged
    (:data:`~repro.store.manifest.UPGRADEABLE_VERSIONS`), the manifest
    carries the full v2 shape (zone maps included), the parser version
    matches, and the source file still matches its stamp — then
    the existing segments are exactly what a v3 build would have written,
    so hashing them *is* the v3 manifest.  The rewrite is atomic
    (temp + ``os.replace``); an :class:`OSError` (read-only store, disk
    full) logs a warning and leaves the entry untouched.
    """
    if manifest.store_format_version not in UPGRADEABLE_VERSIONS:
        return None
    if manifest.parser_version != PARSER_VERSION or not manifest.source_fresh(path):
        return None
    if manifest.zones is None:
        # Not actually the v2 shape (zone maps arrived with v2): hashing
        # segments cannot conjure the missing planner metadata — rebuild.
        return None
    try:
        for name in segment_files(manifest):
            segment = os.path.join(entry, name)
            manifest.column_bytes[name] = os.path.getsize(segment)
            manifest.column_hashes[name] = file_sha256(segment)
        manifest.store_format_version = STORE_FORMAT_VERSION
        manifest_path = os.path.join(entry, MANIFEST_NAME)
        tmp = f"{manifest_path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(manifest.to_json() + "\n")
        os.replace(tmp, manifest_path)
    except OSError as exc:
        _log.warning("store_entry_upgrade_failed", entry=entry, error=repr(exc))
        return None
    metrics.counter("store.entries_upgraded").inc()
    _log.info("store_entry_upgraded", entry=entry, to_version=STORE_FORMAT_VERSION)
    return manifest


def load_current_manifest(entry: str, path: str) -> Optional[Manifest]:
    """Load an entry's manifest, transparently upgrading old versions.

    The single manifest-read used by the reader and the builder's reuse
    check: a current-version manifest loads as-is; an upgradeable one is
    rewritten to v3 first (so hashes exist before anyone trusts the
    entry); anything else returns as loaded and fails the caller's
    ``is_fresh`` check, forcing a rebuild.
    """
    manifest = Manifest.load(entry)
    if manifest is None:
        return None
    if manifest.store_format_version in UPGRADEABLE_VERSIONS:
        upgraded = upgrade_entry(entry, manifest, path)
        if upgraded is not None:
            return upgraded
    return manifest


#: Entry statuses a scrub can report.
_STATUS_OK = "ok"
_STATUS_STALE = "stale"
_STATUS_CORRUPT = "corrupt"
_STATUS_SOURCE_MISSING = "source-missing"


@dataclass
class EntryReport:
    """One entry's scrub outcome."""

    entry: str
    source: str
    status: str  # "ok" | "stale" | "corrupt" | "source-missing"
    n_rows: int = 0
    issues: List[EntryIssue] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry": self.entry,
            "source": self.source,
            "status": self.status,
            "n_rows": self.n_rows,
            "issues": [issue.to_dict() for issue in self.issues],
        }


@dataclass
class ScrubReport:
    """Whole-store scrub outcome (the ``repro store verify`` payload)."""

    store_dir: str
    deep: bool
    entries: List[EntryReport] = field(default_factory=list)
    #: in-flight or abandoned ``.tmp-<pid>`` build directories (not errors).
    tmp_dirs: List[str] = field(default_factory=list)
    #: ``.corrupt-<pid>`` directories left by serve-time quarantine.
    quarantined: List[str] = field(default_factory=list)
    #: directories that hold no readable manifest at all.
    unreadable: List[str] = field(default_factory=list)

    @property
    def corrupt(self) -> List[EntryReport]:
        return [e for e in self.entries if e.status == _STATUS_CORRUPT]

    @property
    def ok(self) -> bool:
        """True when no entry is corrupt (stale/missing-source are benign)."""
        return not self.corrupt and not self.unreadable

    def to_dict(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for report in self.entries:
            counts[report.status] = counts.get(report.status, 0) + 1
        return {
            "store_dir": self.store_dir,
            "deep": self.deep,
            "ok": self.ok,
            "status_counts": counts,
            "entries": [e.to_dict() for e in self.entries],
            "tmp_dirs": self.tmp_dirs,
            "quarantined": self.quarantined,
            "unreadable": self.unreadable,
        }


def scrub_store(store_dir: str, deep: bool = False) -> ScrubReport:
    """Verify every entry of a store directory (``repro store verify``).

    Walks the directory in sorted order for a deterministic report.  An
    entry is ``corrupt`` when any segment fails :func:`verify_entry`;
    ``stale`` when its manifest no longer speaks for the source (old
    version/parser or changed stamp — it would be rebuilt on first use,
    so its segments are not scrubbed); ``source-missing`` when the
    source text file is gone (the entry still serves nothing and cannot
    self-heal).  Upgradeable manifests are upgraded as a side effect,
    exactly like a serve would.
    """
    if not os.path.isdir(store_dir):
        raise FileNotFoundError(f"store directory does not exist: {store_dir!r}")
    report = ScrubReport(store_dir=store_dir, deep=deep)
    for name in sorted(os.listdir(store_dir)):
        child = os.path.join(store_dir, name)
        if not os.path.isdir(child):
            continue
        if ".tmp-" in name:
            report.tmp_dirs.append(child)
            continue
        if ".corrupt-" in name:
            report.quarantined.append(child)
            continue
        manifest = Manifest.load(child)
        if manifest is None:
            report.unreadable.append(child)
            continue
        source = manifest.source.path
        if not os.path.isfile(source):
            report.entries.append(
                EntryReport(child, source, _STATUS_SOURCE_MISSING, manifest.n_rows)
            )
            continue
        current = load_current_manifest(child, source) or manifest
        if not current.is_fresh(source):
            report.entries.append(EntryReport(child, source, _STATUS_STALE, current.n_rows))
            continue
        issues = verify_entry(child, current, deep=deep)
        status = _STATUS_CORRUPT if issues else _STATUS_OK
        report.entries.append(EntryReport(child, source, status, current.n_rows, issues))
        metrics.counter("store.entries_scrubbed").inc()
        if issues:
            metrics.counter("store.corrupt_entries").inc()
            _log.warning(
                "store_entry_corrupt",
                entry=child,
                issues=[issue.detail for issue in issues],
            )
    return report
