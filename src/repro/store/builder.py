"""Store ingest: parse a trace file once, persist it as columnar segments.

The builder reuses the engine's exact batch parsers
(:func:`repro.engine.chunks._iter_batch_columns` — fast path, row-by-row
fallback, and salvage policies included), so the columns it persists are
bit-identical to what a text-path run would have produced under the same
error policy.  Segments land as ``.npy`` files (no pickling) inside a
per-file entry directory; the manifest is written last and the whole
entry is swapped into place atomically, so readers only ever see complete
entries.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import faults
from ..obs import metrics
from ..obs.logging import get_logger
from ..resilience import ON_ERROR_QUARANTINE, ON_ERROR_STRICT, ParseErrors, validate_on_error
from .config import StoreConfig
from .manifest import (
    CODES_FILE,
    COLUMN_FILES,
    MANIFEST_NAME,
    RESPONSE_FILE,
    Manifest,
    SourceStamp,
    ZoneMaps,
    entry_dir,
)

__all__ = ["build_entry", "ingest_file", "ingest_dir", "IngestFileReport"]

_log = get_logger("repro.store")


class _ColumnBuffers:
    """Growing file-order column fragments plus the volume-code map."""

    def __init__(self) -> None:
        self.timestamps: List[np.ndarray] = []
        self.offsets: List[np.ndarray] = []
        self.sizes: List[np.ndarray] = []
        self.is_write: List[np.ndarray] = []
        self.response: List[Optional[np.ndarray]] = []
        self.codes: List[np.ndarray] = []
        self.vol_index: Dict[str, int] = {}  # volume id -> first-seen code

    def add(self, columns: Tuple) -> None:
        volumes, timestamps, offsets, sizes, is_write, response = columns
        self.timestamps.append(np.asarray(timestamps, dtype=np.float64))
        self.offsets.append(np.asarray(offsets, dtype=np.int64))
        self.sizes.append(np.asarray(sizes, dtype=np.int64))
        self.is_write.append(np.asarray(is_write, dtype=bool))
        self.response.append(
            None if response is None else np.asarray(response, dtype=np.float64)
        )
        uniq, inverse = np.unique(np.asarray(volumes), return_inverse=True)
        batch_codes = np.array(
            [self.vol_index.setdefault(str(u), len(self.vol_index)) for u in uniq.tolist()],
            dtype=np.int64,
        )
        self.codes.append(batch_codes[inverse])

    def finalize(self):
        """Concatenate fragments; remap codes to sorted-volume-id order."""
        n = sum(len(part) for part in self.timestamps)
        timestamps = _concat(self.timestamps, np.float64)
        offsets = _concat(self.offsets, np.int64)
        sizes = _concat(self.sizes, np.int64)
        is_write = _concat(self.is_write, np.bool_)
        response: Optional[np.ndarray] = None
        if any(part is not None for part in self.response):
            filled = [
                part
                if part is not None
                else np.full(len(ts), np.nan, dtype=np.float64)
                for part, ts in zip(self.response, self.timestamps)
            ]
            response = _concat(filled, np.float64)
        ids = sorted(self.vol_index)
        remap = np.empty(max(len(ids), 1), dtype=np.int64)
        for new_code, vid in enumerate(ids):
            remap[self.vol_index[vid]] = new_code
        codes = remap[_concat(self.codes, np.int64)] if n else _concat(self.codes, np.int64)
        return timestamps, offsets, sizes, is_write, response, codes, ids


def _concat(parts: List[np.ndarray], dtype) -> np.ndarray:
    parts = [p for p in parts if p is not None and len(p)]
    if not parts:
        return np.empty(0, dtype=dtype)
    return np.concatenate(parts)


def _zone_maps(
    timestamps: np.ndarray,
    offsets: np.ndarray,
    is_write: np.ndarray,
    zone_rows: int,
) -> Optional[ZoneMaps]:
    """Per-``zone_rows``-span statistics for the manifest (None if empty)."""
    n = len(timestamps)
    if n == 0:
        return None
    zones = ZoneMaps(
        zone_rows=zone_rows, min_ts=[], max_ts=[], min_off=[], max_off=[],
        n_rows=[], n_writes=[],
    )
    for lo in range(0, n, zone_rows):
        s = slice(lo, min(lo + zone_rows, n))
        zones.min_ts.append(float(timestamps[s].min()))
        zones.max_ts.append(float(timestamps[s].max()))
        zones.min_off.append(int(offsets[s].min()))
        zones.max_off.append(int(offsets[s].max()))
        zones.n_rows.append(int(s.stop - s.start))
        zones.n_writes.append(int(np.count_nonzero(is_write[s])))
    return zones


def _volume_rows(codes: np.ndarray, ids: List[str], n: int) -> Dict[str, List[int]]:
    """``volume id -> [first, last]`` file-order row index per volume."""
    if n == 0:
        return {}
    if len(ids) == 1:
        return {ids[0]: [0, n - 1]}
    spans: Dict[str, List[int]] = {}
    for code, vid in enumerate(ids):
        rows = np.flatnonzero(codes == code)
        if len(rows):
            spans[vid] = [int(rows[0]), int(rows[-1])]
    return spans


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid still running (or unprobeable)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        # Exists but owned by someone else, or unprobeable: assume alive.
        return True
    return True


def _clean_stale_tmp(entry: str) -> None:
    """Remove abandoned ``<entry>.tmp-<pid>`` dirs whose builder died.

    A SIGKILL mid-build leaves the temp directory behind (the ``except``
    cleanup never runs); the manifest-last discipline means it holds no
    entry a reader would trust, but it wastes disk forever.  The next
    builder of the same entry sweeps temp dirs whose owning pid is gone —
    live pids are left alone (a concurrent build in flight).
    """
    parent, base = os.path.split(entry)
    prefix = f"{base}.tmp-"
    try:
        siblings = os.listdir(parent or ".")
    except OSError:
        return
    for name in siblings:
        if not name.startswith(prefix):
            continue
        suffix = name[len(prefix):]
        if suffix.isdigit() and suffix != str(os.getpid()) and not _pid_alive(int(suffix)):
            _log.info("store_stale_tmp_removed", path=os.path.join(parent, name))
            shutil.rmtree(os.path.join(parent, name), ignore_errors=True)


def _swap_into_place(tmp: str, entry: str) -> bool:
    """Move a fully built tmp entry to its final name; False on a lost race."""
    if os.path.isdir(entry):
        shutil.rmtree(entry)
    try:
        os.rename(tmp, entry)
    except OSError:
        # Another process rebuilt the entry between rmtree and rename; its
        # entry is as good as ours (same source, same key) — yield to it.
        shutil.rmtree(tmp, ignore_errors=True)
        return False
    return True


def build_entry(
    path: str,
    fmt: str = "alicloud",
    store_dir: Optional[str] = None,
    chunk_size: Optional[int] = None,
    skip_header: bool = True,
    on_error: str = ON_ERROR_STRICT,
) -> Tuple[str, Manifest]:
    """Parse ``path`` once and persist it as a store entry.

    Under ``on_error="strict"`` a malformed line raises the parser's
    exact :class:`~repro.trace.reader.TraceFormatError` and no entry is
    written; under ``skip``/``quarantine`` the dropped-line ledger is
    persisted in the manifest so warm runs replay exact error counts.

    Returns ``(entry_dir, manifest)`` of the entry now in place (ours, or
    a concurrent builder's equivalent one if we lost the swap race).
    """
    from ..engine.chunks import DEFAULT_CHUNK_SIZE, _iter_batch_columns

    on_error = validate_on_error(on_error)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    reg = metrics.get_registry()
    start = perf_counter()
    stamp = SourceStamp.of(path)
    parse_errors = ParseErrors() if on_error != ON_ERROR_STRICT else None
    fallback_before = reg.counter("parse.fallback_batches").value
    buffers = _ColumnBuffers()
    for columns in _iter_batch_columns(
        path, fmt=fmt, chunk_size=chunk_size, skip_header=skip_header,
        on_error=on_error, errors=parse_errors,
    ):
        buffers.add(columns)
    timestamps, offsets, sizes, is_write, response, codes, ids = buffers.finalize()

    manifest = Manifest(
        source=stamp,
        fmt=fmt,
        skip_header=skip_header,
        on_error=on_error,
        n_rows=len(timestamps),
        volumes=ids,
        has_response=response is not None,
        has_codes=len(ids) > 1,
        dropped=parse_errors.dropped if parse_errors is not None else 0,
        quarantine=list(parse_errors.sample) if parse_errors is not None else [],
        fallback_batches=int(reg.counter("parse.fallback_batches").value - fallback_before),
        # Zone spans match the ingest batch size: on clean single-volume
        # files served at the same chunk_size, one zone == one chunk, so
        # zone-map skipping is exact (not just a superset bound) there.
        zones=_zone_maps(timestamps, offsets, is_write, chunk_size),
        volume_rows=_volume_rows(codes, ids, len(timestamps)),
    )

    entry = entry_dir(StoreConfig(dir=store_dir).dir_for(path), path)
    _clean_stale_tmp(entry)
    tmp = f"{entry}.tmp-{os.getpid()}"
    shutil.rmtree(tmp, ignore_errors=True)
    os.makedirs(tmp)
    try:
        arrays = {
            COLUMN_FILES["timestamps"]: timestamps,
            COLUMN_FILES["offsets"]: offsets,
            COLUMN_FILES["sizes"]: sizes,
            COLUMN_FILES["is_write"]: is_write,
        }
        if response is not None:
            arrays[RESPONSE_FILE] = response
        if manifest.has_codes:
            arrays[CODES_FILE] = codes
        written = 0
        for filename, array in arrays.items():
            target = os.path.join(tmp, filename)
            sha = hashlib.sha256()
            with open(target, "wb") as fh:
                np.save(fh, array, allow_pickle=False)
            with open(target, "rb") as fh:
                for block in iter(lambda: fh.read(1 << 20), b""):
                    sha.update(block)
            size = os.path.getsize(target)
            manifest.column_bytes[filename] = size
            manifest.column_hashes[filename] = sha.hexdigest()
            written += size
        # The drill's worst-case crash point: columns durable, manifest
        # (the commit record) not yet written — the entry must stay
        # invisible to every reader.
        faults.inject_ingest_fault(path)
        with open(os.path.join(tmp, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            fh.write(manifest.to_json() + "\n")
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    if not _swap_into_place(tmp, entry):
        winner = Manifest.load(entry)
        if winner is not None:
            manifest = winner
    reg.counter("store.entries_built").inc()
    reg.counter("store.bytes_written").inc(written)
    reg.histogram("store.build_seconds").observe(perf_counter() - start)
    _log.debug(
        "store_entry_built", path=path, entry=entry, rows=manifest.n_rows,
        volumes=len(manifest.volumes), dropped=manifest.dropped,
    )
    return entry, manifest


@dataclass(frozen=True)
class IngestFileReport:
    """Outcome of ingesting one trace file."""

    path: str
    entry: str
    built: bool  # False when a fresh, policy-compatible entry was reused
    n_rows: int
    n_volumes: int
    dropped: int

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def ingest_file(
    path: str,
    fmt: str = "alicloud",
    store_dir: Optional[str] = None,
    chunk_size: Optional[int] = None,
    on_error: str = ON_ERROR_QUARANTINE,
    force: bool = False,
) -> IngestFileReport:
    """Ensure ``path`` has a fresh store entry; build one when needed.

    Module-level (picklable) so directory ingests fan files out across a
    process pool.  A fresh entry whose build policy can serve ``on_error``
    is reused as-is unless ``force`` is set.
    """
    from .manifest import compatible_policy
    from .scrub import load_current_manifest

    entry = entry_dir(StoreConfig(dir=store_dir).dir_for(path), path)
    if not force:
        manifest = load_current_manifest(entry, path)
        if (
            manifest is not None
            and manifest.is_fresh(path)
            and compatible_policy(manifest, on_error)
        ):
            metrics.counter("store.ingest_reused").inc()
            return IngestFileReport(
                path=path, entry=entry, built=False, n_rows=manifest.n_rows,
                n_volumes=len(manifest.volumes), dropped=manifest.dropped,
            )
    entry, manifest = build_entry(
        path, fmt=fmt, store_dir=store_dir, chunk_size=chunk_size, on_error=on_error
    )
    return IngestFileReport(
        path=path, entry=entry, built=True, n_rows=manifest.n_rows,
        n_volumes=len(manifest.volumes), dropped=manifest.dropped,
    )


def ingest_dir(
    directory: str,
    fmt: str = "alicloud",
    store_dir: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: int = 1,
    on_error: str = ON_ERROR_QUARANTINE,
    force: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
) -> List[IngestFileReport]:
    """Ingest every trace file of a directory (``repro ingest``).

    Files fan out across ``workers`` processes; each worker parses and
    writes its own entries, so nothing large crosses the pool.  Files
    dispatch biggest-first (LPT — the largest parse can't land last and
    serialize the tail of the ingest); reports come back in sorted-path
    order regardless of completion or dispatch order.
    """
    from ..engine.chunks import list_trace_files
    from ..engine.runner import parallel_map
    from ..engine.units import file_cost

    files = list_trace_files(directory)
    return list(
        parallel_map(
            ingest_file,
            files,
            workers,
            progress=progress,
            priorities=[file_cost(f) for f in files],
            fmt=fmt,
            store_dir=store_dir,
            chunk_size=chunk_size,
            on_error=on_error,
            force=force,
        )
    )
