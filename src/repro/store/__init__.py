"""repro.store — memory-mapped columnar trace store: parse once, mmap forever.

Every figure, table, and benchmark run used to re-parse the same text
traces from scratch; text decode and int casts dominated wall time on
multi-million-request fleets.  The store breaks that cycle with a
per-file binary columnar cache:

* **ingest** (:func:`ingest_dir` / ``repro ingest``, or transparent
  on-first-use conversion) parses each ``.csv``/``.csv.gz`` through the
  engine's exact chunked parsers once and persists the columns —
  timestamps / offsets / sizes / is_write / response_times plus a
  per-volume code index — as ``.npy`` segments with a JSON manifest;
* the **manifest** (:mod:`repro.store.manifest`) is content-addressed:
  source path, size, mtime, trace format, parser version, and error
  policy all participate, so stale or differently-parsed entries
  invalidate automatically;
* **serving** (:mod:`repro.store.reader`) hands the engine
  ``np.load(..., mmap_mode="r")`` views — zero text parsing, zero copies
  until an analyzer slices — through the same ``Chunk`` stream the text
  path produces, so results stay bit-identical at any worker count;
* the ingest's **fault ledger** (dropped-line counts, quarantine
  samples) is persisted in the manifest and replayed on warm runs, so
  cached results keep exact error accounting;
* **integrity** (:mod:`repro.store.scrub`): v3 manifests record each
  segment's byte size and sha256; ``repro store verify`` scrubs a store
  (``--deep`` re-hashes bytes), and serving with ``StoreConfig.verify``
  quarantines corrupt entries and self-heals them by rebuilding from the
  source text — v2 entries upgrade in place on first touch.

Quickstart::

    from repro.store import StoreConfig, ingest_dir
    from repro.engine import StreamingProfileAnalyzer, run

    ingest_dir("traces/", fmt="alicloud", workers=4)      # parse once
    store = StoreConfig()                                  # .repro-store/
    result = run("traces/", [StreamingProfileAnalyzer()],
                 workers=4, store=store)                   # mmap forever
"""

from .builder import IngestFileReport, build_entry, ingest_dir, ingest_file
from .config import DEFAULT_STORE_DIRNAME, StoreConfig
from .manifest import (
    MANIFEST_NAME,
    PARSER_VERSION,
    STORE_FORMAT_VERSION,
    UPGRADEABLE_VERSIONS,
    Manifest,
    SourceStamp,
    ZoneMaps,
    ZoneStats,
    aligned_row_splits,
    compatible_policy,
    entry_dir,
    segment_files,
)
from .reader import (
    ENTRY_FRESH,
    ENTRY_INCOMPATIBLE,
    ENTRY_MISS,
    ENTRY_STALE,
    StoreEntry,
    entry_status,
    serve_chunks,
    serve_range,
    try_serve,
)
from .scrub import (
    EntryIssue,
    EntryReport,
    ScrubReport,
    file_sha256,
    load_current_manifest,
    scrub_store,
    upgrade_entry,
    verify_entry,
)

__all__ = [
    "DEFAULT_STORE_DIRNAME",
    "StoreConfig",
    "MANIFEST_NAME",
    "PARSER_VERSION",
    "STORE_FORMAT_VERSION",
    "UPGRADEABLE_VERSIONS",
    "Manifest",
    "SourceStamp",
    "ZoneMaps",
    "ZoneStats",
    "aligned_row_splits",
    "compatible_policy",
    "entry_dir",
    "segment_files",
    "IngestFileReport",
    "build_entry",
    "ingest_file",
    "ingest_dir",
    "ENTRY_FRESH",
    "ENTRY_INCOMPATIBLE",
    "ENTRY_MISS",
    "ENTRY_STALE",
    "StoreEntry",
    "entry_status",
    "serve_chunks",
    "serve_range",
    "try_serve",
    "EntryIssue",
    "EntryReport",
    "ScrubReport",
    "file_sha256",
    "load_current_manifest",
    "scrub_store",
    "upgrade_entry",
    "verify_entry",
]
