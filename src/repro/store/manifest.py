"""Store entry manifests: the content-addressed cache contract.

One store entry mirrors one source trace file as columnar ``.npy``
segments plus a JSON manifest.  The manifest carries everything needed to
decide — without touching the text file's contents — whether the entry
still speaks for the source:

* a **source stamp** (absolute path, byte size, ``mtime_ns``) taken when
  the entry was built; any change to the file invalidates the entry;
* the **parser version** (bumped whenever text-parse semantics change)
  and the **store format version** (bumped whenever the on-disk layout
  changes);
* the **parse configuration** (trace format, header handling, error
  policy) the columns were produced under;
* the ingest's **fault ledger** — the exact count of malformed lines
  dropped and the bounded quarantine sample — so a warm run reproduces
  the cold run's error accounting bit for bit;
* **zone maps** (:class:`ZoneMaps`) — per-span min/max timestamp and
  offset, row and write counts over fixed ``zone_rows`` row spans, plus
  per-volume ``[first, last]`` row ranges — statistics the reader uses
  to prove whole chunks disjoint from a query predicate and skip them
  without touching their bytes;
* per-segment **byte sizes and sha256 hashes** (v3+) — the integrity
  surface ``repro store verify`` scrubs and ``--verify-store`` checks
  before trusting an mmap, so bit rot is detected instead of silently
  analyzed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..resilience import QuarantineRecord

__all__ = [
    "STORE_FORMAT_VERSION",
    "UPGRADEABLE_VERSIONS",
    "PARSER_VERSION",
    "MANIFEST_NAME",
    "COLUMN_FILES",
    "CODES_FILE",
    "RESPONSE_FILE",
    "SourceStamp",
    "ZoneMaps",
    "ZoneStats",
    "Manifest",
    "aligned_row_splits",
    "entry_dir",
    "segment_files",
    "compatible_policy",
]

#: On-disk layout version; bump when the segment layout changes.
#: v2: manifests carry zone maps and per-volume row ranges (query
#: planning); v1 entries read as stale and rebuild on first use.
#: v3: manifests carry per-segment byte sizes and sha256 hashes
#: (integrity scrubbing); the segment layout itself is unchanged, so v2
#: entries upgrade in place (hashes computed from the existing segments)
#: instead of rebuilding — see ``repro.store.scrub.upgrade_entry``.
STORE_FORMAT_VERSION = 3

#: Prior versions whose segment layout matches the current one, making an
#: in-place manifest upgrade (no re-parse) sufficient.
UPGRADEABLE_VERSIONS = frozenset({2})

#: Version of the text-parse semantics the columns were produced by.
#: Bump whenever :mod:`repro.engine.chunks` / :mod:`repro.trace.reader`
#: change what a line parses to — every existing entry then reads as
#: stale and is rebuilt on first use.
PARSER_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Always-present column segments, in canonical order.
COLUMN_FILES = {
    "timestamps": "timestamps.npy",
    "offsets": "offsets.npy",
    "sizes": "sizes.npy",
    "is_write": "is_write.npy",
}
#: Per-row volume codes (present only when the file holds >1 volume).
CODES_FILE = "vol_codes.npy"
#: Response-time column (present for formats that carry service times).
RESPONSE_FILE = "response_times.npy"


def entry_dir(store_dir: str, path: str) -> str:
    """The entry directory for one source file.

    Keyed by the source's absolute path (basename kept readable, a short
    path digest appended so same-named files in different directories
    sharing one ``--store-dir`` never collide).
    """
    abspath = os.path.abspath(path)
    digest = hashlib.sha256(abspath.encode("utf-8")).hexdigest()[:12]
    return os.path.join(store_dir, f"{os.path.basename(abspath)}-{digest}")


@dataclass(frozen=True)
class SourceStamp:
    """Identity of the source text file at build time."""

    path: str
    size: int
    mtime_ns: int

    @classmethod
    def of(cls, path: str) -> "SourceStamp":
        st = os.stat(path)
        return cls(path=os.path.abspath(path), size=st.st_size, mtime_ns=st.st_mtime_ns)


@dataclass
class ZoneMaps:
    """Per-span statistics over fixed ``zone_rows`` row spans.

    Zone ``i`` summarizes file-order rows ``[i * zone_rows,
    (i + 1) * zone_rows)``; list index is the zone index.  The reader
    aggregates zones over any row range (:meth:`window`) to bound what a
    chunk *could* contain, so a predicate provably matching nothing in
    the bound lets the whole chunk be skipped unread.  Statistics only —
    rows are never consulted, so the bound stays correct at any serving
    chunk size.
    """

    zone_rows: int
    min_ts: List[float]
    max_ts: List[float]
    min_off: List[int]
    max_off: List[int]
    n_rows: List[int]
    n_writes: List[int]

    def window(self, lo: int, hi: int) -> "ZoneStats":
        """Aggregate statistics of the zones covering rows ``[lo, hi)``.

        The covering zones may extend past the range, so the result is a
        superset bound: anything true of no row in the bound is true of
        no row in the range.
        """
        zi0 = lo // self.zone_rows
        zi1 = min((hi - 1) // self.zone_rows + 1, len(self.min_ts))
        return ZoneStats(
            min_ts=min(self.min_ts[zi0:zi1]),
            max_ts=max(self.max_ts[zi0:zi1]),
            min_off=min(self.min_off[zi0:zi1]),
            max_off=max(self.max_off[zi0:zi1]),
            n_rows=sum(self.n_rows[zi0:zi1]),
            n_writes=sum(self.n_writes[zi0:zi1]),
        )


def aligned_row_splits(n_rows: int, split_rows: int, zone_rows: int) -> List[int]:
    """Interior row boundaries splitting ``[0, n_rows)`` into ~``split_rows``
    pieces, snapped to ``zone_rows`` multiples.

    Boundaries on zone-span edges keep :meth:`ZoneMaps.window` bounds over
    a sub-range exactly as tight as over whole-file chunking (a window
    never has to include a zone the range only grazes).  Returns ``[]``
    when the range fits in one piece or ``split_rows`` is off (<= 0).
    """
    if split_rows <= 0 or n_rows <= split_rows:
        return []
    step = split_rows
    if zone_rows > 0:
        step = max(1, round(split_rows / zone_rows)) * zone_rows
    return list(range(step, n_rows, step))


@dataclass(frozen=True)
class ZoneStats:
    """One aggregated zone-map window (see :meth:`ZoneMaps.window`)."""

    min_ts: float
    max_ts: float
    min_off: int
    max_off: int
    n_rows: int
    n_writes: int


@dataclass
class Manifest:
    """Everything a warm run needs to trust and serve one entry."""

    source: SourceStamp
    fmt: str
    skip_header: bool
    on_error: str
    n_rows: int
    volumes: List[str]  # sorted unique volume ids; codes index into this
    has_response: bool
    has_codes: bool
    dropped: int = 0
    quarantine: List[QuarantineRecord] = field(default_factory=list)
    fallback_batches: int = 0
    #: Zone-map statistics over fixed row spans (None for empty entries).
    zones: Optional[ZoneMaps] = None
    #: volume id -> [first, last] file-order row index of that volume's
    #: rows (its rows need not be contiguous; this is the hull).
    volume_rows: Dict[str, List[int]] = field(default_factory=dict)
    #: segment filename -> byte size at build time (v3+; empty for older
    #: entries until upgraded).
    column_bytes: Dict[str, int] = field(default_factory=dict)
    #: segment filename -> sha256 hex digest of its bytes (v3+).
    column_hashes: Dict[str, str] = field(default_factory=dict)
    store_format_version: int = STORE_FORMAT_VERSION
    parser_version: int = PARSER_VERSION

    def source_fresh(self, path: str) -> bool:
        """True when the source stamp (size + mtime) still matches ``path``.

        The stamp-only half of :meth:`is_fresh` — version-agnostic, so the
        in-place v2 upgrade can check the source hasn't changed before
        trusting the old segments.
        """
        try:
            st = os.stat(path)
        except OSError:
            return False
        return st.st_size == self.source.size and st.st_mtime_ns == self.source.mtime_ns

    def is_fresh(self, path: str) -> bool:
        """True when this entry still mirrors ``path`` exactly.

        Checks the source stamp (size + mtime), the store layout version,
        and the parser version; the error policy is a *compatibility*
        question, not a freshness one (see :func:`compatible_policy`).
        """
        if self.store_format_version != STORE_FORMAT_VERSION:
            return False
        if self.parser_version != PARSER_VERSION:
            return False
        return self.source_fresh(path)

    def to_json(self) -> str:
        payload: Dict[str, Any] = asdict(self)
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        raw = json.loads(text)
        raw["source"] = SourceStamp(**raw["source"])
        raw["quarantine"] = [QuarantineRecord(**q) for q in raw.get("quarantine", [])]
        zones = raw.get("zones")
        raw["zones"] = ZoneMaps(**zones) if zones else None
        raw.setdefault("volume_rows", {})
        raw.setdefault("column_bytes", {})
        raw.setdefault("column_hashes", {})
        return cls(**raw)

    @classmethod
    def load(cls, entry: str) -> Optional["Manifest"]:
        """Read an entry's manifest; ``None`` when absent or unreadable."""
        manifest_path = os.path.join(entry, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except (OSError, ValueError, KeyError, TypeError):
            return None


def segment_files(manifest: Manifest) -> List[str]:
    """The ``.npy`` segment filenames this entry must hold, in canonical
    order — the scrub/verify surface."""
    names = list(COLUMN_FILES.values())
    if manifest.has_response:
        names.append(RESPONSE_FILE)
    if manifest.has_codes:
        names.append(CODES_FILE)
    return names


def compatible_policy(manifest: Manifest, on_error: str) -> bool:
    """Can an entry built under ``manifest.on_error`` serve ``on_error``?

    The surviving rows — and the exactness of the fault ledger — decide:

    * same policy: always;
    * a clean build (``dropped == 0``): any policy parses a clean file to
      the same rows, so the entry serves all three;
    * ``skip`` served from a ``quarantine`` build: same surviving rows,
      and the exact dropped count is known (samples are simply unused);
    * everything else (``strict`` over a dirty entry, ``quarantine`` from
      a sample-less ``skip`` build): incompatible — the caller falls back
      to the text parser or rebuilds.
    """
    from ..resilience import ON_ERROR_QUARANTINE, ON_ERROR_SKIP

    if manifest.on_error == on_error or manifest.dropped == 0:
        return True
    return on_error == ON_ERROR_SKIP and manifest.on_error == ON_ERROR_QUARANTINE
