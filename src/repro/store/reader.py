"""Serving chunks from store entries — parse never, mmap always.

A warm read opens the entry's ``.npy`` segments with
``np.load(..., mmap_mode="r")`` and yields :class:`~repro.engine.chunks.Chunk`
views straight off the page cache: zero text decode, zero int casts, and
— for single-volume files (the common layout written by
:func:`repro.trace.writer.write_dataset_dir`) — zero copies until an
analyzer slices.  The chunk stream is *structurally identical* to the
text path at the same ``chunk_size`` (same batch boundaries, same
volume-sorted splits), so engine results are bit-identical.

Every worker calls :func:`try_serve` itself and opens its own maps;
:class:`~repro.store.config.StoreConfig` is the only store object that
crosses a process pool.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

import numpy as np

from ..obs import metrics
from ..obs.logging import get_logger
from ..resilience import (
    ON_ERROR_QUARANTINE,
    ON_ERROR_SKIP,
    ON_ERROR_STRICT,
    ParseErrors,
)
from .config import StoreConfig
from .manifest import (
    CODES_FILE,
    COLUMN_FILES,
    RESPONSE_FILE,
    Manifest,
    compatible_policy,
    entry_dir,
)

if TYPE_CHECKING:  # circular at runtime: engine.chunks lazily imports us
    from ..engine.chunks import Chunk

__all__ = [
    "ENTRY_FRESH",
    "ENTRY_STALE",
    "ENTRY_MISS",
    "ENTRY_INCOMPATIBLE",
    "StoreEntry",
    "entry_status",
    "serve_chunks",
    "try_serve",
]

_log = get_logger("repro.store")

#: Entry states reported by :func:`entry_status`.
ENTRY_FRESH = "fresh"  # manifest matches the source; policy servable
ENTRY_STALE = "stale"  # entry exists but no longer mirrors the source
ENTRY_MISS = "miss"  # no entry at all
ENTRY_INCOMPATIBLE = "incompatible"  # fresh, but cannot serve this policy


@dataclass(frozen=True)
class StoreEntry:
    """A loaded, freshness-checked store entry for one source file."""

    source: str
    entry: str
    manifest: Manifest


def entry_status(
    path: str,
    store: StoreConfig,
    fmt: str,
    skip_header: bool = True,
    on_error: Optional[str] = None,
) -> Tuple[str, Optional[StoreEntry]]:
    """Classify ``path``'s entry: fresh / stale / miss / incompatible.

    ``on_error=None`` skips the policy-compatibility check (manifest
    consumers like ``repro validate`` decide that themselves).  The
    returned :class:`StoreEntry` accompanies ``fresh`` *and*
    ``incompatible`` (the manifest is valid either way); ``stale`` and
    ``miss`` return ``None``.
    """
    entry = entry_dir(store.dir_for(path), path)
    manifest = Manifest.load(entry)
    if manifest is None:
        return ENTRY_MISS, None
    if (
        not manifest.is_fresh(path)
        or manifest.fmt != fmt
        or manifest.skip_header != skip_header
    ):
        return ENTRY_STALE, None
    loaded = StoreEntry(source=path, entry=entry, manifest=manifest)
    if on_error is not None and not compatible_policy(manifest, on_error):
        return ENTRY_INCOMPATIBLE, loaded
    return ENTRY_FRESH, loaded


def _replay_ledger(
    manifest: Manifest, on_error: str, errors: Optional[ParseErrors]
) -> None:
    """Reproduce the ingest's exact dropped-line accounting for this run."""
    if manifest.dropped == 0 or on_error == ON_ERROR_STRICT:
        return
    keep_sample = on_error == ON_ERROR_QUARANTINE
    metrics.counter(
        "engine.lines_quarantined" if keep_sample else "engine.lines_skipped"
    ).inc(manifest.dropped)
    if errors is None:
        return
    errors.dropped += manifest.dropped
    if keep_sample:
        room = errors.sample_cap - len(errors.sample)
        if room > 0:
            errors.sample.extend(manifest.quarantine[:room])


def serve_chunks(
    entry: StoreEntry,
    chunk_size: int,
    on_error: str = ON_ERROR_STRICT,
    errors: Optional[ParseErrors] = None,
) -> Iterator["Chunk"]:
    """Yield the entry's rows as the text path's exact chunk stream.

    Single-volume entries yield read-only mmap *views* (zero copy);
    multi-volume entries replicate the text path's stable volume-sorted
    batch split (one fancy-indexed copy per chunk, same as text parsing).

    One caveat on entries with dropped malformed lines: the text path
    batches ``chunk_size`` raw *lines* (so a batch shrinks by however
    many it dropped) while the store batches ``chunk_size`` surviving
    *rows* — chunk boundaries can differ, but the per-volume row streams
    (the only thing analyzers fold) are bit-identical either way, as are
    the replayed error ledgers.  Clean entries match boundary-for-boundary.
    """
    from ..engine.chunks import Chunk

    manifest = entry.manifest
    reg = metrics.get_registry()
    _replay_ledger(manifest, on_error, errors)
    reg.counter("store.hits").inc()
    reg.counter("store.rows").inc(manifest.n_rows)
    if manifest.n_rows == 0:
        return

    def column(filename: str) -> np.ndarray:
        return np.load(os.path.join(entry.entry, filename), mmap_mode="r")

    timestamps = column(COLUMN_FILES["timestamps"])
    offsets = column(COLUMN_FILES["offsets"])
    sizes = column(COLUMN_FILES["sizes"])
    is_write = column(COLUMN_FILES["is_write"])
    response = column(RESPONSE_FILE) if manifest.has_response else None
    reg.counter("store.mmap_bytes").inc(
        sum(
            int(a.nbytes)
            for a in (timestamps, offsets, sizes, is_write, response)
            if a is not None
        )
    )
    chunks_total = reg.counter("store.chunks")
    n = manifest.n_rows
    if not manifest.has_codes:
        volume_id = manifest.volumes[0]
        for lo in range(0, n, chunk_size):
            s = slice(lo, min(lo + chunk_size, n))
            chunks_total.inc()
            yield Chunk(
                volume_id,
                timestamps[s],
                offsets[s],
                sizes[s],
                is_write[s],
                None if response is None else response[s],
            )
        return
    codes = column(CODES_FILE)
    for lo in range(0, n, chunk_size):
        batch = np.asarray(codes[lo : lo + chunk_size])
        order = np.argsort(batch, kind="stable")
        sorted_codes = batch[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        for seg in np.split(order, boundaries):
            idx = seg + lo
            chunks_total.inc()
            yield Chunk(
                manifest.volumes[int(batch[seg[0]])],
                timestamps[idx],
                offsets[idx],
                sizes[idx],
                is_write[idx],
                None if response is None else response[idx],
            )


def try_serve(
    path: str,
    fmt: str,
    chunk_size: int,
    skip_header: bool,
    on_error: str,
    errors: Optional[ParseErrors],
    store: StoreConfig,
) -> Optional[Iterator["Chunk"]]:
    """The engine's store fast path: serve, build-then-serve, or decline.

    Returns a chunk iterator on a hit (or after transparent on-first-use
    ingest when ``store.build`` is set), or ``None`` when the caller
    should fall back to text parsing.  A ``strict`` build of a malformed
    file raises the parser's exact ``TraceFormatError`` — the same
    behavior, message, and line number as the text path.
    """
    from .builder import build_entry

    reg = metrics.get_registry()
    status, entry = entry_status(path, store, fmt, skip_header, on_error)
    if status == ENTRY_FRESH and entry is not None:
        return serve_chunks(entry, chunk_size, on_error, errors)
    reg.counter("store.misses").inc()
    if status == ENTRY_STALE:
        reg.counter("store.stale_entries").inc()
    if not store.build:
        return None
    try:
        entry_path, manifest = build_entry(
            path, fmt=fmt, store_dir=store.dir, chunk_size=chunk_size,
            skip_header=skip_header, on_error=on_error,
        )
    except OSError as exc:
        # An unwritable or full store must never fail the analysis —
        # count it, say so, and let the text path take over.
        reg.counter("store.build_errors").inc()
        _log.warning("store_build_failed", path=path, error=repr(exc))
        return None
    built = StoreEntry(source=path, entry=entry_path, manifest=manifest)
    if not compatible_policy(manifest, on_error):
        # A concurrent builder won the swap race with a policy we cannot
        # serve; parsing text is always correct.
        return None
    return serve_chunks(built, chunk_size, on_error, errors)
