"""Serving chunks from store entries — parse never, mmap always.

A warm read opens the entry's ``.npy`` segments with
``np.load(..., mmap_mode="r")`` and yields :class:`~repro.engine.chunks.Chunk`
views straight off the page cache: zero text decode, zero int casts, and
— for single-volume files (the common layout written by
:func:`repro.trace.writer.write_dataset_dir`) — zero copies until an
analyzer slices.  The chunk stream is *structurally identical* to the
text path at the same ``chunk_size`` (same batch boundaries, same
volume-sorted splits), so engine results are bit-identical.

Every worker calls :func:`try_serve` itself and opens its own maps;
:class:`~repro.store.config.StoreConfig` is the only store object that
crosses a process pool.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

import numpy as np

from ..engine.plan import QueryPlan, RowPredicate
from ..obs import metrics
from ..obs.logging import get_logger
from ..resilience import (
    ON_ERROR_QUARANTINE,
    ON_ERROR_SKIP,
    ON_ERROR_STRICT,
    ParseErrors,
    StoreCorruption,
)
from .config import StoreConfig
from .manifest import (
    CODES_FILE,
    COLUMN_FILES,
    RESPONSE_FILE,
    Manifest,
    ZoneMaps,
    compatible_policy,
    entry_dir,
)
from .scrub import load_current_manifest, verify_entry

if TYPE_CHECKING:  # circular at runtime: engine.chunks lazily imports us
    from ..engine.chunks import Chunk

__all__ = [
    "ENTRY_FRESH",
    "ENTRY_STALE",
    "ENTRY_MISS",
    "ENTRY_INCOMPATIBLE",
    "StoreEntry",
    "entry_status",
    "serve_chunks",
    "serve_range",
    "try_serve",
]

_log = get_logger("repro.store")

#: Entry states reported by :func:`entry_status`.
ENTRY_FRESH = "fresh"  # manifest matches the source; policy servable
ENTRY_STALE = "stale"  # entry exists but no longer mirrors the source
ENTRY_MISS = "miss"  # no entry at all
ENTRY_INCOMPATIBLE = "incompatible"  # fresh, but cannot serve this policy


@dataclass(frozen=True)
class StoreEntry:
    """A loaded, freshness-checked store entry for one source file."""

    source: str
    entry: str
    manifest: Manifest


def entry_status(
    path: str,
    store: StoreConfig,
    fmt: str,
    skip_header: bool = True,
    on_error: Optional[str] = None,
) -> Tuple[str, Optional[StoreEntry]]:
    """Classify ``path``'s entry: fresh / stale / miss / incompatible.

    ``on_error=None`` skips the policy-compatibility check (manifest
    consumers like ``repro validate`` decide that themselves).  The
    returned :class:`StoreEntry` accompanies ``fresh`` *and*
    ``incompatible`` (the manifest is valid either way); ``stale`` and
    ``miss`` return ``None``.
    """
    entry = entry_dir(store.dir_for(path), path)
    manifest = load_current_manifest(entry, path)
    if manifest is None:
        return ENTRY_MISS, None
    if (
        not manifest.is_fresh(path)
        or manifest.fmt != fmt
        or manifest.skip_header != skip_header
    ):
        return ENTRY_STALE, None
    loaded = StoreEntry(source=path, entry=entry, manifest=manifest)
    if on_error is not None and not compatible_policy(manifest, on_error):
        return ENTRY_INCOMPATIBLE, loaded
    return ENTRY_FRESH, loaded


def _replay_ledger(
    manifest: Manifest, on_error: str, errors: Optional[ParseErrors]
) -> None:
    """Reproduce the ingest's exact dropped-line accounting for this run."""
    if manifest.dropped == 0 or on_error == ON_ERROR_STRICT:
        return
    keep_sample = on_error == ON_ERROR_QUARANTINE
    metrics.counter(
        "engine.lines_quarantined" if keep_sample else "engine.lines_skipped"
    ).inc(manifest.dropped)
    if errors is None:
        return
    errors.dropped += manifest.dropped
    if keep_sample:
        room = errors.sample_cap - len(errors.sample)
        if room > 0:
            errors.sample.extend(manifest.quarantine[:room])


def _entry_disjoint(manifest: Manifest, predicate: RowPredicate) -> bool:
    """Can the manifest alone prove no row of the entry matches?"""
    if predicate.volumes is not None and not any(
        v in predicate.volumes for v in manifest.volumes
    ):
        return True
    zones = manifest.zones
    if zones is not None:
        whole = zones.window(0, manifest.n_rows)
        if not predicate.overlaps_window(whole.min_ts, whole.max_ts):
            return True
        if not predicate.matches_op_mix(whole.n_rows, whole.n_writes):
            return True
    return False


def _zone_allows(
    zones: Optional[ZoneMaps], lo: int, hi: int, predicate: RowPredicate
) -> bool:
    """Could rows ``[lo, hi)`` contain a predicate match, per zone maps?

    The zone window is a superset of the rows, so False is a proof of
    disjointness; True just means "cannot rule it out".
    """
    if zones is None:
        return True
    window = zones.window(lo, hi)
    return predicate.overlaps_window(
        window.min_ts, window.max_ts
    ) and predicate.matches_op_mix(window.n_rows, window.n_writes)


def _lazy_masked(arr: np.ndarray, lo: int, hi: int, mask: np.ndarray):
    """Deferred masked copy off an mmap — materialized only if an
    analyzer actually reads the column."""

    def thunk() -> np.ndarray:
        return np.asarray(arr[lo:hi])[mask]

    return thunk


def serve_chunks(
    entry: StoreEntry,
    chunk_size: int,
    on_error: str = ON_ERROR_STRICT,
    errors: Optional[ParseErrors] = None,
    plan: Optional[QueryPlan] = None,
) -> Iterator["Chunk"]:
    """Yield the entry's rows as the text path's exact chunk stream.

    Equivalent to :func:`serve_range` over the whole entry — see there
    for the serving semantics and determinism caveats.
    """
    return serve_range(
        entry, 0, entry.manifest.n_rows, chunk_size, on_error, errors, plan=plan
    )


def serve_range(
    entry: StoreEntry,
    lo: int,
    hi: int,
    chunk_size: int,
    on_error: str = ON_ERROR_STRICT,
    errors: Optional[ParseErrors] = None,
    plan: Optional[QueryPlan] = None,
) -> Iterator["Chunk"]:
    """Yield file-order rows ``[lo, hi)`` of the entry as a chunk stream.

    The engine's unit-splitting serve path (and, over the full range, the
    body of :func:`serve_chunks`): only the requested rows are ever
    sliced off the mmap, so a sub-unit's cost is proportional to its
    range, not the file.  ``hi`` is clamped to the entry's row count and
    the range served in ``chunk_size`` batches from ``lo``.

    Single-volume entries yield read-only mmap *views* (zero copy);
    multi-volume entries replicate the text path's stable volume-sorted
    batch split (one fancy-indexed copy per chunk, same as text parsing).

    With a ``plan``, only the plan's columns are ``np.load``-ed at all
    (pruned columns never touch the page cache) and the predicate prunes
    rows *before* materialization: disjoint entries and chunks the zone
    maps prove disjoint are skipped unread
    (``plan.files_skipped`` / ``plan.chunks_skipped``), surviving chunks
    are masked with deferred copies, and the served row streams equal
    the unpruned stream post-filtered.

    Range accounting: metrics and ledgers that describe the *file* are
    charged to the sub-range that owns row 0 exactly once — the dropped-
    line ledger replays and ``plan.files_skipped`` counts only when
    ``lo == 0`` — while per-serve metrics (``store.hits`` per serve,
    ``store.rows`` by ``hi - lo``) accumulate to the same totals as one
    whole-file serve.

    Determinism caveats: on entries with dropped malformed lines the text
    path batches ``chunk_size`` raw *lines* while the store batches
    ``chunk_size`` surviving *rows* — chunk boundaries can differ, but
    the per-volume row streams (the only thing analyzers fold) are
    bit-identical either way, as are the replayed error ledgers; clean
    whole-file serves match boundary-for-boundary.  Range serves batch
    from ``lo``, so their boundaries differ from a whole-file serve by
    construction — same row streams, different chunking (see DESIGN.md
    on what that means for capacity-bounded sketches).
    """
    from ..engine.chunks import Chunk

    manifest = entry.manifest
    reg = metrics.get_registry()
    lo = max(0, int(lo))
    hi = min(int(hi), manifest.n_rows)
    if lo == 0:
        _replay_ledger(manifest, on_error, errors)
    reg.counter("store.hits").inc()
    reg.counter("store.rows").inc(max(0, hi - lo))
    if hi <= lo:
        return
    if plan is not None and plan.is_noop():
        plan = None
    predicate = plan.predicate if plan is not None else None
    n = manifest.n_rows
    if predicate is not None and _entry_disjoint(manifest, predicate):
        if lo == 0:
            reg.counter("plan.files_skipped").inc()
        reg.counter("plan.rows_pruned").inc(hi - lo)
        return

    wanted = plan.load_columns() if plan is not None else None

    def column(filename: str) -> np.ndarray:
        return np.load(os.path.join(entry.entry, filename), mmap_mode="r")

    cols: dict = {}
    pruned_cols = 0
    for name, filename in COLUMN_FILES.items():
        if wanted is None or name in wanted:
            cols[name] = column(filename)
        else:
            cols[name] = None
            pruned_cols += 1
    if manifest.has_response and (wanted is None or "response_times" in wanted):
        cols["response_times"] = column(RESPONSE_FILE)
    else:
        cols["response_times"] = None
        if manifest.has_response:
            pruned_cols += 1
    reg.counter("store.mmap_bytes").inc(
        sum(int(a.nbytes) for a in cols.values() if a is not None)
    )
    chunks_total = reg.counter("store.chunks")
    rows_served = reg.counter("plan.rows_served")
    rows_pruned = reg.counter("plan.rows_pruned")
    chunks_skipped = reg.counter("plan.chunks_skipped")
    columns_pruned = reg.counter("plan.columns_pruned")
    zones = manifest.zones

    def batch_mask(lo: int, hi: int) -> Optional[np.ndarray]:
        """Predicate keep-mask over file-order rows [lo, hi) (None=all)."""
        assert predicate is not None
        return predicate.row_mask(
            np.asarray(cols["timestamps"][lo:hi]) if predicate.needs_timestamps else None,
            np.asarray(cols["is_write"][lo:hi]) if predicate.needs_ops else None,
        )

    if not manifest.has_codes:
        volume_id = manifest.volumes[0]
        for b_lo in range(lo, hi, chunk_size):
            b_hi = min(b_lo + chunk_size, hi)
            if predicate is not None and not _zone_allows(zones, b_lo, b_hi, predicate):
                chunks_skipped.inc()
                rows_pruned.inc(b_hi - b_lo)
                continue
            mask = batch_mask(b_lo, b_hi) if predicate is not None else None
            kept = b_hi - b_lo
            if mask is not None:
                kept = int(np.count_nonzero(mask))
                if kept == 0:
                    chunks_skipped.inc()
                    rows_pruned.inc(b_hi - b_lo)
                    continue
                if kept == b_hi - b_lo:
                    mask = None
                else:
                    rows_pruned.inc(b_hi - b_lo - kept)
            chunks_total.inc()
            if plan is not None:
                rows_served.inc(kept)
                if pruned_cols:
                    columns_pruned.inc(pruned_cols)
            if mask is None:
                yield Chunk(
                    volume_id,
                    n_rows=kept,
                    **{
                        name: None if arr is None else arr[b_lo:b_hi]
                        for name, arr in cols.items()
                    },
                )
            else:
                yield Chunk(
                    volume_id,
                    n_rows=kept,
                    **{
                        name: None if arr is None else _lazy_masked(arr, b_lo, b_hi, mask)
                        for name, arr in cols.items()
                    },
                )
        return

    codes = column(CODES_FILE)
    # Volume predicates narrow the scanned row range to the hull of the
    # wanted volumes' rows (chunks wholly outside skip unread) and mask
    # rows of unwanted volumes inside it.
    row_lo, row_hi = 0, n
    allowed: Optional[np.ndarray] = None
    if predicate is not None and predicate.volumes is not None:
        vset = set(predicate.volumes)
        allowed = np.array([v in vset for v in manifest.volumes], dtype=bool)
        spans = [
            manifest.volume_rows[v] for v in vset if v in manifest.volume_rows
        ]
        if spans:
            row_lo = min(span[0] for span in spans)
            row_hi = max(span[1] for span in spans) + 1
    for b_lo in range(lo, hi, chunk_size):
        b_hi = min(b_lo + chunk_size, hi)
        if predicate is not None and (
            b_hi <= row_lo or b_lo >= row_hi
            or not _zone_allows(zones, b_lo, b_hi, predicate)
        ):
            chunks_skipped.inc()
            rows_pruned.inc(b_hi - b_lo)
            continue
        batch = np.asarray(codes[b_lo:b_hi])
        keep = batch_mask(b_lo, b_hi) if predicate is not None else None
        if allowed is not None:
            vmask = allowed[batch]
            keep = vmask if keep is None else keep & vmask
        if keep is not None:
            kept_rows = int(np.count_nonzero(keep))
            if kept_rows == 0:
                chunks_skipped.inc()
                rows_pruned.inc(b_hi - b_lo)
                continue
            rows_pruned.inc(b_hi - b_lo - kept_rows)
        order = np.argsort(batch, kind="stable")
        sorted_codes = batch[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        for seg in np.split(order, boundaries):
            vid = manifest.volumes[int(batch[seg[0]])]
            if keep is not None:
                seg = seg[keep[seg]]
                if len(seg) == 0:
                    chunks_skipped.inc()
                    continue
            idx = seg + b_lo
            chunks_total.inc()
            if plan is not None:
                rows_served.inc(len(seg))
                if pruned_cols:
                    columns_pruned.inc(pruned_cols)
            yield Chunk(
                vid,
                n_rows=len(seg),
                **{
                    name: None if arr is None else arr[idx]
                    for name, arr in cols.items()
                },
            )


def _quarantine_entry(entry: StoreEntry, issues) -> StoreCorruption:
    """Move a corrupt entry aside so nothing ever serves it again.

    The entry directory is renamed to ``<entry>.corrupt-<pid>`` —
    preserved for forensics, invisible to every reader (no manifest at
    the entry path) and to the scrub walk (listed separately).  When the
    rename itself fails the entry is deleted outright: a corrupt entry
    that stays serveable is the one unacceptable outcome.
    """
    target: Optional[str] = f"{entry.entry}.corrupt-{os.getpid()}"
    try:
        if target is not None and os.path.isdir(target):
            # Same process quarantined this entry before; one forensic
            # copy is enough.
            shutil.rmtree(target)
        os.rename(entry.entry, target)
    except OSError as exc:
        _log.warning("store_quarantine_rename_failed", entry=entry.entry, error=repr(exc))
        shutil.rmtree(entry.entry, ignore_errors=True)
        target = None
    corruption = StoreCorruption(
        file=entry.source,
        entry=entry.entry,
        issues=tuple(issue.detail for issue in issues),
        quarantined_to=target,
    )
    metrics.counter("store.corrupt_entries").inc()
    _log.warning(
        "store_entry_quarantined",
        path=entry.source,
        entry=entry.entry,
        quarantined_to=target,
        issues=list(corruption.issues),
    )
    return corruption


def try_serve(
    path: str,
    fmt: str,
    chunk_size: int,
    skip_header: bool,
    on_error: str,
    errors: Optional[ParseErrors],
    store: StoreConfig,
    plan: Optional[QueryPlan] = None,
    row_range: Optional[Tuple[int, int]] = None,
) -> Optional[Iterator["Chunk"]]:
    """The engine's store fast path: serve, build-then-serve, or decline.

    Returns a chunk iterator on a hit (or after transparent on-first-use
    ingest when ``store.build`` is set), or ``None`` when the caller
    should fall back to text parsing.  A ``strict`` build of a malformed
    file raises the parser's exact ``TraceFormatError`` — the same
    behavior, message, and line number as the text path.  ``plan`` (when
    given) is pushed down into :func:`serve_chunks`.

    With ``row_range`` set, only file-order rows ``[lo, hi)`` are served
    (:func:`serve_range` — the engine's split sub-units).  The entry
    acquisition is identical — verify, self-heal, build on miss — so a
    sub-unit is exactly as durable as a whole-file serve; with
    ``store.verify``, each sub-unit of a file re-verifies the entry it
    serves from.  ``None`` still means "no servable entry", and a range
    caller has no text fallback (row coordinates exist only in store
    space) — it must treat ``None`` as an error.

    With ``store.verify`` set, a fresh entry is deep-verified (sha256
    per segment) before anything trusts its mmap.  A corrupt entry is
    quarantined (renamed aside), recorded as a
    :class:`~repro.resilience.StoreCorruption` in ``errors``, and — the
    source text file necessarily still matching its stamp, or the entry
    would have been stale — **self-healed** by rebuilding from source,
    exactly like a miss.  Results are identical to a never-corrupted run.
    """
    from .builder import build_entry

    def serve(loaded: StoreEntry) -> Iterator["Chunk"]:
        if row_range is not None:
            return serve_range(
                loaded, row_range[0], row_range[1], chunk_size, on_error, errors,
                plan=plan,
            )
        return serve_chunks(loaded, chunk_size, on_error, errors, plan=plan)

    reg = metrics.get_registry()
    status, entry = entry_status(path, store, fmt, skip_header, on_error)
    corruption: Optional[StoreCorruption] = None
    if status == ENTRY_FRESH and entry is not None:
        if store.verify:
            issues = verify_entry(entry.entry, entry.manifest, deep=True)
            if not issues:
                reg.counter("store.entries_verified").inc()
                return serve(entry)
            corruption = _quarantine_entry(entry, issues)
            # Fall through: a quarantined entry is now a rebuildable miss.
        else:
            return serve(entry)
    if corruption is None:
        reg.counter("store.misses").inc()
        if status == ENTRY_STALE:
            reg.counter("store.stale_entries").inc()
    if not store.build or (corruption is not None and not os.path.isfile(path)):
        if corruption is not None and errors is not None:
            errors.store_events.append(corruption)
        return None
    try:
        entry_path, manifest = build_entry(
            path, fmt=fmt, store_dir=store.dir, chunk_size=chunk_size,
            skip_header=skip_header, on_error=on_error,
        )
    except OSError as exc:
        # An unwritable or full store must never fail the analysis —
        # count it, say so, and let the text path take over.
        reg.counter("store.build_errors").inc()
        _log.warning("store_build_failed", path=path, error=repr(exc))
        if corruption is not None and errors is not None:
            errors.store_events.append(corruption)
        return None
    if corruption is not None:
        corruption = replace(corruption, healed=True)
        if errors is not None:
            errors.store_events.append(corruption)
        reg.counter("store.self_healed").inc()
        _log.info("store_entry_healed", path=path, entry=entry_path)
    built = StoreEntry(source=path, entry=entry_path, manifest=manifest)
    if not compatible_policy(manifest, on_error):
        # A concurrent builder won the swap race with a policy we cannot
        # serve; parsing text is always correct.
        return None
    return serve(built)
