"""Store location and behavior knobs.

A :class:`StoreConfig` travels with every store-aware read: it is a small
frozen (picklable) value, so process-pool workers receive it alongside
their unit and open their **own** memory maps — no large array ever
crosses the pool boundary.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

__all__ = ["DEFAULT_STORE_DIRNAME", "StoreConfig"]

#: Default per-trace-directory cache location (a hidden sibling of the
#: trace files, so the cache travels with the data it mirrors).
DEFAULT_STORE_DIRNAME = ".repro-store"


@dataclass(frozen=True)
class StoreConfig:
    """Where the binary trace store lives and how misses are handled.

    Attributes:
        dir: store directory; ``None`` places each file's entry in a
            ``.repro-store`` directory next to that file.
        build: build a missing/stale entry on first use (write-through
            ingest).  ``False`` serves hits only and leaves misses to the
            text parser — used by read-only consumers such as
            ``repro validate``.
        verify: deep-verify (sha256 per segment) every fresh entry before
            serving it.  A corrupt entry is quarantined, recorded in the
            run's fault ledger, and — when ``build`` is set and the
            source text file still exists — rebuilt from source
            (self-heal).  Costs one hash pass per entry per run; off by
            default.
    """

    dir: Optional[str] = None
    build: bool = True
    verify: bool = False

    def dir_for(self, path: str) -> str:
        """The store directory responsible for ``path``'s entry."""
        if self.dir is not None:
            return self.dir
        return os.path.join(os.path.dirname(os.path.abspath(path)), DEFAULT_STORE_DIRNAME)
