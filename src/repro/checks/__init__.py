"""repro.checks — AST-based invariant linter for the analysis pipeline.

The engine's reproducibility contract (bit-identical results at any
``--workers`` value) rests on properties the runtime tests can only
spot-check: **determinism** (no hidden entropy or wall-clock reads in
pure paths), **mergeability** (ordered, hash-independent merge folds),
**picklability** (state that survives the process pool), and — since
the whole-program pass — **cross-module contracts** (declared column
sets, env-var handoff, gated metric names).  This package enforces them
statically, at lint time.

Rule pack:

========  ==============================================================
RC001     no unseeded / global-state randomness
RC002     no wall-clock reads in pure analysis paths (obs allowlisted)
RC003     no unordered (set/frozenset) iteration in merge paths
RC004     no unpicklables (lambdas, locks, handles) on pool-crossing state
RC005     no silently swallowed exceptions
RC006     ``__all__`` present and consistent with public defs
RC007     ``required_columns`` covers every chunk column consume reaches
RC008     ``REPRO_*`` env vars read anywhere are written on a handoff path
RC009     baseline metric names match a name the sources can produce
RC010     state factories resolved across modules return picklable values
========  ==============================================================

RC001–RC006 are per-file; RC007–RC010 run over a whole-program
:class:`~repro.checks.project.ProjectModel` (imports resolved across
modules, bounded dataflow over analyzer methods).  Per-file parse and
summary artifacts are cached content-addressed under
``.repro/checks-cache/`` so warm runs stay fast.

Usage::

    repro lint [paths ...] [--format json|sarif] [--sarif out.sarif]
               [--select RC001,RC007] [--changed [REF]] [--no-cache]
    python -m repro.checks

Suppress a single line with ``# repro: noqa[RC001]``; configure per-rule
severity, path scoping, and rule options under ``[tool.repro.checks]``
in ``pyproject.toml``.  See the README's "Static analysis" section.
"""

from __future__ import annotations

from .cache import SummaryCache
from .config import CheckConfig, RuleConfig, load_config
from .driver import (
    LintRun,
    LintStats,
    collect_files,
    lint_files,
    lint_paths,
    lint_project,
    lint_source,
)
from .finding import Finding
from .project import ProjectModel, extract_summary, module_name_for
from .registry import Module, ProjectRule, Rule, all_rules, get_rule, register, rule_ids
from .report import exit_code, format_json, format_text, report_dict
from .sarif import format_sarif, sarif_dict, validate_sarif

__all__ = [
    "CheckConfig",
    "Finding",
    "LintRun",
    "LintStats",
    "Module",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "RuleConfig",
    "SummaryCache",
    "all_rules",
    "collect_files",
    "exit_code",
    "extract_summary",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rule",
    "lint_files",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_config",
    "module_name_for",
    "register",
    "report_dict",
    "rule_ids",
    "sarif_dict",
    "validate_sarif",
]
