"""repro.checks — AST-based invariant linter for the analysis pipeline.

The engine's reproducibility contract (bit-identical results at any
``--workers`` value) rests on three properties the runtime tests can only
spot-check: **determinism** (no hidden entropy or wall-clock reads in
pure paths), **mergeability** (ordered, hash-independent merge folds),
and **picklability** (state that survives the process pool).  This
package enforces them statically, on every file, at lint time.

Rule pack:

========  ==============================================================
RC001     no unseeded / global-state randomness
RC002     no wall-clock reads in pure analysis paths (obs allowlisted)
RC003     no unordered (set/frozenset) iteration in merge paths
RC004     no unpicklables (lambdas, locks, handles) on pool-crossing state
RC005     no silently swallowed exceptions
RC006     ``__all__`` present and consistent with public defs
========  ==============================================================

Usage::

    repro lint [paths ...] [--format json] [--select RC001,RC003]
    python -m repro.checks

Suppress a single line with ``# repro: noqa[RC001]``; configure per-rule
severity and path scoping under ``[tool.repro.checks]`` in
``pyproject.toml``.  See the README's "Static analysis" section.
"""

from __future__ import annotations

from .config import CheckConfig, RuleConfig, load_config
from .driver import collect_files, lint_files, lint_paths, lint_source
from .finding import Finding
from .registry import Module, Rule, all_rules, get_rule, register, rule_ids
from .report import exit_code, format_json, format_text, report_dict

__all__ = [
    "CheckConfig",
    "Finding",
    "Module",
    "Rule",
    "RuleConfig",
    "all_rules",
    "collect_files",
    "exit_code",
    "format_json",
    "format_text",
    "get_rule",
    "lint_files",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
    "report_dict",
    "rule_ids",
]
