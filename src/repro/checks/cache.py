"""Content-hash-keyed incremental cache for the lint driver.

The whole-program pass re-reads every file on every run; parsing and
summarizing are what make it slow.  This cache persists, per source
file, the per-file findings (post-noqa) and the project summary under
``.repro/checks-cache/`` so a warm ``repro lint`` on an unchanged tree
reparses nothing.

An entry is valid only when three keys match:

* the SHA-256 of the file's bytes — any edit invalidates that file;
* the rule-pack fingerprint — a digest over every ``repro.checks``
  source file (and :data:`repro.checks.project.SUMMARY_VERSION`), so
  editing a rule or the summary schema invalidates *everything*;
* the per-file config key — enabled rules, effective severities and
  the ``--select`` set as they apply to that path, so flipping a rule
  off in ``pyproject.toml`` does not serve stale findings.

Entries are one JSON file each, named by a hash of the source path, and
written atomically (tmp + ``os.replace``) so a crashed run can never
leave a half-written entry.  Invalid entries are overwritten in place,
which bounds growth at one entry per linted path.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from .finding import Finding

__all__ = ["DEFAULT_CACHE_DIR", "SummaryCache", "rules_fingerprint"]

#: Default cache location, relative to the config root (the directory of
#: the governing ``pyproject.toml``) or the working directory.
DEFAULT_CACHE_DIR = os.path.join(".repro", "checks-cache")

_FINDING_FIELDS = ("path", "line", "col", "rule", "severity", "message", "hint")

_fingerprint: Optional[str] = None


def rules_fingerprint() -> str:
    """Digest of the checks package's own sources + summary version.

    Computed once per process; editing any rule, the driver, or the
    project model changes the fingerprint and therefore invalidates
    every cache entry — the "rules version" key from the issue.
    """
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        from .project import SUMMARY_VERSION

        digest.update(f"summary-v{SUMMARY_VERSION}".encode("utf-8"))
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for dirpath, dirnames, filenames in os.walk(package_dir):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                digest.update(os.path.relpath(full, package_dir).encode("utf-8"))
                with open(full, "rb") as fh:
                    digest.update(fh.read())
        _fingerprint = digest.hexdigest()
    return _fingerprint


class SummaryCache:
    """Per-file parse/summary artifacts with hit/miss accounting."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _entry_path(self, path: str) -> str:
        name = hashlib.sha1(path.encode("utf-8")).hexdigest()[:24]
        return os.path.join(self.directory, f"{name}.json")

    def load(
        self, path: str, content_hash: str, config_key: str
    ) -> Optional[Tuple[List[Finding], Optional[Dict[str, Any]]]]:
        """(findings, summary) when the entry matches all keys, else None.

        Counts a hit or a miss; callers must follow a miss with
        :meth:`store` so the next run hits.
        """
        entry = self._read(self._entry_path(path))
        if (
            entry is None
            or entry.get("path") != path
            or entry.get("content_hash") != content_hash
            or entry.get("fingerprint") != rules_fingerprint()
            or entry.get("config_key") != config_key
        ):
            self.misses += 1
            return None
        findings = [
            Finding(**{name: f[name] for name in _FINDING_FIELDS})
            for f in entry.get("findings", [])
        ]
        self.hits += 1
        return findings, entry.get("summary")

    def store(
        self,
        path: str,
        content_hash: str,
        config_key: str,
        findings: List[Finding],
        summary: Optional[Dict[str, Any]],
    ) -> None:
        entry = {
            "path": path,
            "content_hash": content_hash,
            "fingerprint": rules_fingerprint(),
            "config_key": config_key,
            "findings": [f.to_dict() for f in findings],
            "summary": summary,
        }
        os.makedirs(self.directory, exist_ok=True)
        target = self._entry_path(path)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, target)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @staticmethod
    def _read(entry_path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(entry_path, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
        except (OSError, ValueError):
            return None  # absent or corrupt entries are plain misses
        return loaded if isinstance(loaded, dict) else None
