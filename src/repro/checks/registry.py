"""Rule plumbing: the module context rules see, the Rule base, the registry.

A rule is a class with an ``id`` (``RCnnn``), a default severity, a fix
``hint``, and a ``check(module)`` method yielding :class:`~repro.checks.finding.Finding`
objects.  Rules are registered with :func:`register` at import time
(:mod:`repro.checks.rules` imports every rule module) and looked up by id.

:class:`Module` packages everything a rule needs for one source file —
the parsed AST, the raw text, and an import-alias resolver so rules can
match calls like ``np.random.default_rng()`` against canonical dotted
names (``numpy.random.default_rng``) however the module spelled its
imports.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Type

from .finding import Finding

__all__ = [
    "ImportMap",
    "Module",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rule_ids",
]


class ImportMap:
    """Resolve local names to canonical dotted import paths.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime as dt`` maps ``dt -> datetime.datetime``.  :meth:`resolve`
    then canonicalizes an attribute chain rooted at an imported name —
    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` — and
    returns ``None`` for chains rooted anywhere else (locals, attributes
    of ``self``, …), which keeps rules from guessing about shadowed names.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay project-local
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a ``Name``/``Attribute`` chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class Module:
    """One source file, parsed and ready for rules."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        self.imports = ImportMap(tree)

    @classmethod
    def from_source(cls, text: str, path: str = "<snippet>") -> "Module":
        return cls(path, text, ast.parse(text))

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """A finding anchored at ``node``, carrying the rule's metadata."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            severity=rule.severity,
            message=message,
            hint=hint if hint is not None else rule.hint,
        )


class Rule:
    """Base class for invariant rules.  Subclass and :func:`register`."""

    #: Unique rule id, ``RCnnn``.
    id: str = ""
    #: One-line description of the invariant the rule encodes.
    description: str = ""
    #: Default severity; per-rule config may override.
    severity: str = "error"
    #: Default fix guidance attached to findings.
    hint: str = ""
    #: ``"file"`` rules see one :class:`Module` at a time via :meth:`check`;
    #: ``"project"`` rules (see :class:`ProjectRule`) see the whole tree.
    scope: str = "file"
    #: Default fnmatch patterns limiting which files the rule sees
    #: (empty means every linted file).
    default_include: Iterable[str] = ()
    #: Default fnmatch patterns exempting files from the rule.
    default_exclude: Iterable[str] = ()

    def __init__(self) -> None:
        #: Free-form per-rule settings from ``[tool.repro.checks.rules.*]``
        #: (keys the config dataclass does not claim for itself).
        self.options: dict = {}

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError

    def configured(
        self, severity: Optional[str] = None, options: Optional[dict] = None
    ) -> "Rule":
        """A copy of this rule with config-overridden severity/options."""
        if (severity is None or severity == self.severity) and not options:
            return self
        clone = type(self)()
        if severity is not None:
            clone.severity = severity
        if options:
            clone.options = dict(options)
        return clone


class ProjectRule(Rule):
    """A rule that checks the whole linted tree, not one file.

    Subclasses implement :meth:`check_project` against a
    :class:`repro.checks.project.ProjectModel`; the driver runs them once
    per lint after every per-file summary is available, filters their
    findings through the same path scoping and noqa machinery as
    per-file findings, and sorts everything together.
    """

    scope = "project"

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())  # project rules do not run per file

    def check_project(self, project, config) -> Iterator[Finding]:
        """Findings over the whole project (``project`` is a ProjectModel)."""
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        hint: Optional[str] = None,
        severity: Optional[str] = None,
    ) -> Finding:
        """A finding at an explicit location, carrying this rule's metadata."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.id,
            severity=severity if severity is not None else self.severity,
            message=message,
            hint=hint if hint is not None else self.hint,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry (by id)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]()


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]
