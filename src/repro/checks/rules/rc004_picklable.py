"""RC004 — analyzer/metrics state must be picklable.

Analyzer state objects and metrics snapshots cross the process pool:
``init_state`` results are folded in workers, partial states ship back to
the parent, and :func:`repro.engine.runner.parallel_map` pickles bound
functions.  A lambda, nested-closure, lock, open file handle, or live
generator stored on such state dies inside :mod:`pickle` at fan-out time
— usually only when ``--workers > 1``, which is exactly when nobody is
looking.

Scope: functions named ``init_state`` / ``consume`` / ``merge`` anywhere,
plus every method of classes named ``*State``.  Flagged there:

* lambdas / generator expressions assigned to object attributes;
* ``open(...)`` results or synchronization primitives
  (``threading.Lock`` & co.) assigned to object attributes;
* synchronization-primitive construction anywhere in scope;
* ``init_state`` returning a value with a lambda / generator expression
  structurally embedded (call arguments are not descended into, so
  ``sorted(key=lambda …)`` stays legal).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from ..finding import Finding
from ..registry import Module, Rule, register
from .common import (
    LOCK_CONSTRUCTORS,
    STATE_SCOPE_NAMES,
    FunctionNode,
    iter_scope_functions,
    iter_state_classes,
    walk_skipping_calls,
)

__all__ = ["UnpicklableStateRule"]

_LOCK_CONSTRUCTORS = LOCK_CONSTRUCTORS

_EMBEDDED_UNPICKLABLE = (ast.Lambda, ast.GeneratorExp)


def _unpicklable_value(module: Module, value: ast.AST) -> Optional[str]:
    """Why ``value`` cannot cross the pool, or None."""
    if isinstance(value, ast.Lambda):
        return "a lambda (unpicklable)"
    if isinstance(value, ast.GeneratorExp):
        return "a live generator (unpicklable)"
    if isinstance(value, ast.Call):
        qualname = module.imports.resolve(value.func)
        if qualname in _LOCK_CONSTRUCTORS:
            return f"a {qualname}() (unpicklable synchronization primitive)"
        if isinstance(value.func, ast.Name) and value.func.id == "open":
            return "an open file handle (unpicklable)"
    return None


@register
class UnpicklableStateRule(Rule):
    id = "RC004"
    description = "state crossing the process pool must be picklable"
    severity = "error"
    hint = (
        "keep state to plain data (numbers, strings, dicts, arrays, "
        "dataclasses); hold module-level functions instead of lambdas and "
        "reopen files inside the worker"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        seen: Set[int] = set()
        scopes: List[Union[FunctionNode, ast.ClassDef]] = list(
            iter_scope_functions(module.tree, STATE_SCOPE_NAMES)
        )
        for cls in iter_state_classes(module.tree):
            scopes.extend(
                n for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            scopes.append(cls)
        for scope in scopes:
            if id(scope) in seen:
                continue
            seen.add(id(scope))
            yield from self._check_scope(module, scope)

    def _check_scope(
        self, module: Module, scope: Union[FunctionNode, ast.ClassDef]
    ) -> Iterator[Finding]:
        scope_name = scope.name
        if isinstance(scope, ast.ClassDef):
            # Methods are checked as their own scopes; walk only the
            # class-level statements here to avoid duplicate findings.
            nodes = [
                n
                for stmt in scope.body
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                for n in ast.walk(stmt)
            ]
        else:
            nodes = list(ast.walk(scope))
        for node in nodes:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                if value is None or not any(
                    isinstance(t, ast.Attribute) for t in targets
                ):
                    continue
                reason = _unpicklable_value(module, value)
                if reason is not None:
                    yield module.finding(
                        self, value,
                        f"attribute assignment in {scope_name} stores {reason}",
                    )
            elif isinstance(node, ast.Call):
                qualname = module.imports.resolve(node.func)
                if qualname in _LOCK_CONSTRUCTORS:
                    yield module.finding(
                        self, node,
                        f"{qualname}() constructed in {scope_name} — "
                        "synchronization primitives cannot cross the pool",
                    )
            elif (
                isinstance(node, ast.Return)
                and node.value is not None
                and isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
                and scope.name == "init_state"
            ):
                for sub in walk_skipping_calls(node.value):
                    if isinstance(sub, _EMBEDDED_UNPICKLABLE):
                        kind = (
                            "a lambda" if isinstance(sub, ast.Lambda)
                            else "a live generator"
                        )
                        yield module.finding(
                            self, sub,
                            f"init_state returns state embedding {kind} — it "
                            "will fail to pickle at fan-out",
                        )
