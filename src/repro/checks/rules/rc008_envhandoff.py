"""RC008 — every ``REPRO_*`` env knob read must also be written somewhere.

The engine fans out with the ``spawn`` start method: workers inherit
nothing but the environment.  The established handoff pattern
(``REPRO_TRACE`` / ``REPRO_TIMELINE`` / ``REPRO_FAULTS``) is that the
module reading the variable at import or call time has a matching
``os.environ[VAR] = ...`` write on its enable/activate path, so a
parent-process ``enable()`` reaches spawned workers.  A new knob that
only *reads* its variable silently goes dead in workers — env-var
handoff incompleteness.

This rule collects, project-wide, every ``os.environ`` read and write
whose variable name matches the configured prefix (default ``REPRO_``),
resolving both string literals and constant references across modules
(``os.environ[faults.ENV_VAR] = ...`` counts as a write of
``REPRO_FAULTS``).  Any prefixed variable that is read somewhere but
written nowhere in the linted project is reported at each read site.
Variables that are genuinely parent-process-only (the run ledger's
``REPRO_LEDGER_DIR``) should carry a ``# repro: noqa[RC008]`` with a
reason.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..finding import Finding
from ..registry import ProjectRule, register

__all__ = ["EnvHandoffRule"]

DEFAULT_PREFIX = "REPRO_"


@register
class EnvHandoffRule(ProjectRule):
    id = "RC008"
    description = "REPRO_* env vars read anywhere must be written on some handoff path"
    severity = "error"
    hint = (
        "mirror the knob into os.environ on its enable/activate path (the "
        "REPRO_TRACE pattern) so spawn workers inherit it, or mark the read "
        "'# repro: noqa[RC008]' with a reason if it is parent-process-only"
    )

    def check_project(self, project, config) -> Iterator[Finding]:
        prefix = str(self.options.get("prefix", DEFAULT_PREFIX))
        reads: Dict[str, List[Tuple[str, int, int]]] = {}
        written: Set[str] = set()
        for summary in project.summaries():
            for entry in summary.get("env_reads", []):
                var = project.env_var_name(entry)
                if var is not None and var.startswith(prefix):
                    reads.setdefault(var, []).append(
                        (summary["path"], int(entry[2]), int(entry[3]))
                    )
            for entry in summary.get("env_writes", []):
                var = project.env_var_name(entry)
                if var is not None:
                    written.add(var)
        for var in sorted(reads):
            if var in written:
                continue
            for path, line, col in reads[var]:
                yield self.finding_at(
                    path, line, col,
                    f"env var '{var}' is read here but never written anywhere in "
                    "the linted project — spawn workers can never see it",
                )
