"""RC002 — no wall-clock reads in pure analysis paths.

Analyzer folds, statistics, and cache simulations must be functions of
their *inputs*; a ``time.time()`` or ``datetime.now()`` in a pure path
makes results depend on when the run happened, which silently breaks the
bit-identical-at-any-``--workers`` guarantee.  Observability modules are
allowlisted by default (``*/obs/*``) — timing *measurement* is their job
— and monotonic clocks (``time.perf_counter`` / ``time.monotonic``) are
not flagged anywhere, because instrumented durations never feed analysis
results.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..registry import Module, Rule, register

__all__ = ["WallClockRule"]

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    id = "RC002"
    description = "pure analysis paths must not read the wall clock"
    severity = "error"
    hint = (
        "derive timestamps from trace data; for instrumentation use "
        "time.perf_counter via repro.obs, which is allowlisted"
    )
    default_exclude = ("*/obs/*",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = module.imports.resolve(node.func)
            if qualname in _WALL_CLOCK:
                yield module.finding(
                    self, node,
                    f"wall-clock read {qualname}() makes this path's output "
                    "depend on when it ran",
                )
