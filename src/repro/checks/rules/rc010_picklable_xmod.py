"""RC010 — cross-module picklability: resolve state factories project-wide.

RC004 flags unpicklables assigned *directly* onto pool-crossing state
(``self.f = lambda ...``), but goes blind the moment the value comes
from a factory: ``self.gaps = _new_reservoir(...)`` is fine only if
``_new_reservoir`` — possibly in another module — returns plain data.
This rule follows exactly that edge through the
:class:`~repro.checks.project.ProjectModel`:

for every attribute assignment of a call result inside a state scope
(functions named ``init_state``/``consume``/``merge``, or any method of
a ``*State`` class), resolve the callee across the project and flag it
when

* the callee is a function whose return descriptors include a lambda,
  generator expression, lock constructor, or ``open(...)`` — following
  ``return other_factory(...)`` chains to a small depth; or
* the callee is a project class whose ``__init__`` stores an
  unpicklable on ``self`` (again following its own factory calls).

Callees that do not resolve inside the linted project (numpy, stdlib)
are presumed picklable — the rule extends RC004's reach, it does not
guess about third-party internals.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Set, Tuple

from ..finding import Finding
from ..registry import ProjectRule, register
from .common import STATE_SCOPE_NAMES

__all__ = ["CrossModulePicklabilityRule"]

_MAX_DEPTH = 3


def _is_state_scope(qualname: str) -> bool:
    if "." in qualname:
        cls_name, method = qualname.split(".", 1)
        return method in STATE_SCOPE_NAMES or cls_name.endswith("State")
    return qualname in STATE_SCOPE_NAMES


@register
class CrossModulePicklabilityRule(ProjectRule):
    id = "RC010"
    description = "state factories resolved across modules must return picklable values"
    severity = "error"
    hint = (
        "make the factory return plain data (numbers, dicts, arrays, "
        "dataclasses); lambdas, generators, locks and file handles die in "
        "pickle at pool fan-out"
    )

    def check_project(self, project, config) -> Iterator[Finding]:
        for summary in project.summaries():
            for qualname in sorted(summary["functions"]):
                if not _is_state_scope(qualname):
                    continue
                fn = summary["functions"][qualname]
                cls_ctx = qualname.split(".")[0] if "." in qualname else None
                for attr, callee, line, col in fn["attr_call_assigns"]:
                    reason = _callee_unpicklable(
                        project, summary, callee, cls_ctx, _MAX_DEPTH, set()
                    )
                    if reason is None:
                        continue
                    yield self.finding_at(
                        summary["path"], line, col,
                        f"{qualname} stores '{attr}' from {callee}(), which {reason}",
                    )


def _callee_unpicklable(
    project,
    summary: Dict[str, Any],
    callee: str,
    cls_ctx: Optional[str],
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Optional[str]:
    """Why calling ``callee`` yields an unpicklable value, or None."""
    if depth <= 0:
        return None
    resolved = project.resolve_call(summary, callee, cls_ctx=cls_ctx)
    if resolved is None:
        return None
    kind, owner, qualname = resolved
    key = (owner["module"], qualname)
    if key in seen:
        return None
    seen.add(key)
    if kind == "function":
        fn = owner["functions"].get(qualname)
        if fn is None:
            return None
        return _returns_unpicklable(project, owner, fn, depth, seen)
    if kind == "class":
        return _class_unpicklable(project, owner, qualname, depth, seen)
    return None


def _returns_unpicklable(
    project,
    owner: Dict[str, Any],
    fn: Dict[str, Any],
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Optional[str]:
    for descriptor in fn["returns"]:
        kind, detail = descriptor[0], descriptor[1]
        if kind == "lambda":
            return "returns a lambda (unpicklable)"
        if kind == "genexp":
            return "returns a live generator (unpicklable)"
        if kind == "lock":
            return f"returns a {detail}() (unpicklable synchronization primitive)"
        if kind == "open":
            return "returns an open file handle (unpicklable)"
        if kind == "call" and detail:
            cls_ctx = fn["qualname"].split(".")[0] if "." in fn["qualname"] else None
            inner = _callee_unpicklable(project, owner, detail, cls_ctx, depth - 1, seen)
            if inner is not None:
                return f"returns {detail}(), which {inner}"
    return None


def _class_unpicklable(
    project,
    owner: Dict[str, Any],
    cls_name: str,
    depth: int,
    seen: Set[Tuple[str, str]],
) -> Optional[str]:
    found = project.method_function(owner, cls_name, "__init__")
    if found is None:
        return None
    init_owner, init_fn = found
    for attr, reason, _line, _col in init_fn["unpicklable_assigns"]:
        return f"constructs {cls_name} whose __init__ stores '{attr}' as {reason}"
    for attr, callee, _line, _col in init_fn["attr_call_assigns"]:
        inner = _callee_unpicklable(project, init_owner, callee, cls_name, depth - 1, seen)
        if inner is not None:
            return (
                f"constructs {cls_name} whose __init__ stores '{attr}' from "
                f"{callee}(), which {inner}"
            )
    return None
