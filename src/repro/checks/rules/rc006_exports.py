"""RC006 — public modules must declare ``__all__`` consistent with their defs.

``__all__`` is the project's public-API contract: ``from repro.x import *``
behaviour, documentation surface, and the boundary mypy/ruff reason
about.  Three findings:

* a module with no ``__all__`` at all;
* a name listed in ``__all__`` but not defined (or imported) at module
  top level — a contract promising something that is not there;
* a public (non-underscore) top-level ``def`` / ``class`` missing from
  ``__all__`` — accidental API surface.

Constants and imported names are *not* required to be exported (modules
import freely without re-exporting), and private modules (``_foo.py``)
plus ``__main__.py`` are skipped by default.  Modules whose ``__all__``
is built dynamically (e.g. concatenation) are skipped — the contract
cannot be read statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..finding import Finding
from ..registry import Module, Rule, register

__all__ = ["ExportsRule"]


def _top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-body statements, descending into top-level if/try blocks."""
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


def _literal_all(node: ast.AST) -> Optional[List[str]]:
    """The string elements of a literal list/tuple ``__all__``, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        names.append(elt.value)
    return names


@register
class ExportsRule(Rule):
    id = "RC006"
    description = "__all__ must exist and match the module's public definitions"
    severity = "error"
    hint = "declare __all__ listing exactly the module's public defs and classes"
    default_exclude = ("*/__main__.py", "*/_[!_]*.py")

    def check(self, module: Module) -> Iterator[Finding]:
        defined: Set[str] = set()
        public_defs: List[ast.stmt] = []
        all_node: Optional[ast.Assign] = None
        all_names: Optional[List[str]] = None
        for stmt in _top_level_statements(module.tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                defined.add(stmt.name)
                if not stmt.name.startswith("_"):
                    public_defs.append(stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
                        if target.id == "__all__":
                            all_node = stmt
                            all_names = _literal_all(stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    defined.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    defined.add(alias.asname or alias.name.split(".")[0])
        if all_node is None:
            yield module.finding(
                self, module.tree,
                "module declares no __all__ — its public API is implicit",
            )
            return
        if all_names is None:
            return  # dynamically built __all__; unreadable statically
        exported = set(all_names)
        for name in all_names:
            if name not in defined:
                yield module.finding(
                    self, all_node,
                    f"__all__ lists {name!r}, which is not defined or imported "
                    "at module top level",
                )
        for stmt in public_defs:
            name = stmt.name  # type: ignore[attr-defined]
            if name not in exported:
                yield module.finding(
                    self, stmt,
                    f"public {'class' if isinstance(stmt, ast.ClassDef) else 'def'} "
                    f"{name!r} is missing from __all__",
                )
