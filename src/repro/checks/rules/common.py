"""Shared AST helpers for the rule pack."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Tuple, Union

__all__ = [
    "FunctionNode",
    "LOCK_CONSTRUCTORS",
    "MERGE_SCOPE_NAMES",
    "STATE_SCOPE_NAMES",
    "attribute_chain",
    "iter_scope_functions",
    "iter_state_classes",
    "walk_skipping_calls",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Canonical names of synchronization-primitive constructors whose results
#: cannot cross the process pool (shared by RC004 and the project model).
LOCK_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

#: Function names that form the engine's deterministic merge paths — the
#: :class:`repro.engine.analyzer.Analyzer` fold operations plus the
#: metrics snapshot/merge pair workers use to ship counters home.
MERGE_SCOPE_NAMES: FrozenSet[str] = frozenset(
    {"consume", "merge", "finalize", "merge_snapshot", "snapshot"}
)

#: Function names whose return values / mutations cross the process pool
#: and therefore must stay picklable.
STATE_SCOPE_NAMES: FrozenSet[str] = frozenset({"init_state", "consume", "merge"})


def iter_scope_functions(
    tree: ast.AST, names: FrozenSet[str]
) -> Iterator[FunctionNode]:
    """Every (sync or async) function in ``tree`` whose name is in ``names``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in names:
            yield node


def iter_state_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Classes named ``*State`` — the conventional analyzer-state carriers."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith("State"):
            yield node


def walk_skipping_calls(expr: ast.AST) -> Iterator[ast.AST]:
    """Walk an expression tree without descending into call arguments.

    Used to spot unpicklables *structurally embedded* in a returned value
    (``return {"f": lambda: 0}``) while ignoring short-lived ones consumed
    by a call on the way out (``return sorted(xs, key=lambda x: x[0])``).
    """
    yield expr
    if isinstance(expr, ast.Call):
        return
    for child in ast.iter_child_nodes(expr):
        yield from walk_skipping_calls(child)


def attribute_chain(node: ast.AST) -> Tuple[str, ...]:
    """The dotted parts of a ``Name``/``Attribute`` chain, outermost last."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))
