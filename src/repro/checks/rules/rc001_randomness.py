"""RC001 — no unseeded or global-state randomness.

Reproducibility of every figure and finding rests on randomness flowing
from explicit, seeded ``numpy.random.Generator`` objects
(:mod:`repro.synth.rng`).  This rule flags the three ways entropy sneaks
in anyway:

* ``np.random.default_rng()`` with no seed (fresh OS entropy per call);
* legacy global-state numpy (``np.random.seed`` / ``np.random.rand`` /
  ``np.random.choice`` …), whose hidden singleton breaks process-pool
  determinism even when seeded;
* the stdlib :mod:`random` module (global Mersenne state, and
  ``random.Random()`` / ``random.SystemRandom()`` constructed unseeded).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..registry import Module, Rule, register

__all__ = ["UnseededRandomnessRule"]

#: Legacy ``numpy.random`` module-level functions backed by the global
#: ``RandomState`` singleton.
_NUMPY_LEGACY = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "poisson", "exponential", "beta",
        "gamma", "binomial", "lognormal", "pareto", "weibull", "zipf",
        "get_state", "set_state",
    }
)

#: Stdlib ``random`` module-level functions (global Mersenne Twister).
_STDLIB_RANDOM = frozenset(
    {
        "seed", "random", "randint", "randrange", "choice", "choices",
        "shuffle", "sample", "uniform", "gauss", "normalvariate",
        "expovariate", "betavariate", "triangular", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate",
        "getrandbits", "randbytes",
    }
)


def _is_unseeded(call: ast.Call) -> bool:
    """No positional seed argument, or an explicit ``None`` seed."""
    if not call.args and not call.keywords:
        return True
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return any(
        kw.arg == "seed" and isinstance(kw.value, ast.Constant) and kw.value.value is None
        for kw in call.keywords
    )


@register
class UnseededRandomnessRule(Rule):
    id = "RC001"
    description = "randomness must come from explicit, seeded numpy Generators"
    severity = "error"
    hint = (
        "thread an explicit numpy Generator (repro.synth.rng.make_rng / "
        "spawn_rngs, or np.random.default_rng(seed)) instead"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = module.imports.resolve(node.func)
            if qualname is None:
                continue
            if qualname == "numpy.random.default_rng":
                if _is_unseeded(node):
                    yield module.finding(
                        self, node,
                        "np.random.default_rng() without a seed draws fresh OS "
                        "entropy — results change run to run",
                    )
                continue
            parts = qualname.split(".")
            if parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] in _NUMPY_LEGACY:
                    yield module.finding(
                        self, node,
                        f"legacy global-state numpy RNG call np.random.{parts[2]}() "
                        "— hidden singleton state is not reproducible across "
                        "processes",
                    )
                continue
            if parts[0] == "random" and len(parts) == 2:
                fn = parts[1]
                if fn in _STDLIB_RANDOM:
                    yield module.finding(
                        self, node,
                        f"stdlib random.{fn}() uses hidden global state",
                    )
                elif fn == "Random" and _is_unseeded(node):
                    yield module.finding(
                        self, node, "random.Random() constructed without a seed"
                    )
                elif fn == "SystemRandom":
                    yield module.finding(
                        self, node,
                        "random.SystemRandom() is OS entropy by design — never "
                        "reproducible",
                    )
