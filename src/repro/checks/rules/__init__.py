"""The built-in rule pack.

Importing this package registers every rule; the driver then asks the
registry (:func:`repro.checks.registry.all_rules`) rather than importing
rule classes directly, so a new rule module only needs to be added to the
import list below.
"""

from __future__ import annotations

from .rc001_randomness import UnseededRandomnessRule
from .rc002_wallclock import WallClockRule
from .rc003_ordering import UnorderedMergeIterationRule
from .rc004_picklable import UnpicklableStateRule
from .rc005_swallow import SwallowedExceptionRule
from .rc006_exports import ExportsRule
from .rc007_columns import ColumnContractRule
from .rc008_envhandoff import EnvHandoffRule
from .rc009_metrics import MetricContractRule
from .rc010_picklable_xmod import CrossModulePicklabilityRule

__all__ = [
    "ColumnContractRule",
    "CrossModulePicklabilityRule",
    "EnvHandoffRule",
    "ExportsRule",
    "MetricContractRule",
    "SwallowedExceptionRule",
    "UnorderedMergeIterationRule",
    "UnpicklableStateRule",
    "UnseededRandomnessRule",
    "WallClockRule",
]
