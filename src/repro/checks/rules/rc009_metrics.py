"""RC009 — every gated baseline metric must still be produced somewhere.

``repro runs check --baseline benchmarks/baselines.json`` fails when a
baselined metric is *missing* from a record — but only at CI runtime,
after the benchmark has already run.  Worse, if a counter is renamed
and the baseline key is updated to match a name nothing produces, the
gate would fail every run; if the baseline entry is deleted instead,
the regression gate silently loses coverage.  This rule closes the loop
at lint time: every metric name in the configured baseline files must
match some name *constructible* by the linted sources or the producer
scripts.

Produced-name patterns come from three places:

* metric-registry call sites in the linted project (``counter(...)`` /
  ``gauge(...)`` / ``histogram(...)`` / ``timer(...)`` with a literal
  or f-string name; f-string fields widen to ``*``).  Histogram/timer
  names also match with the ``flatten_report`` expansion suffixes
  (``.count``, ``.p99``, ...).
* producer scripts (default: ``benchmarks/``), scanned for name-like
  string literals and f-strings; each atom also matches with the
  ``flatten_timings`` suffixes (``.seconds``, ``.requests_per_second``)
  since timing labels become two metrics each.
* ``extra_names`` rule option for names the ledger synthesizes itself
  (defaults: ``run.wall_seconds``, ``run.cpu_seconds``).

Baseline metric names that match nothing are errors, anchored at the
name's line in the baseline file.  Missing baseline files are skipped —
the rule gates committed baselines, it does not require them.
"""

from __future__ import annotations

import ast
import json
import os
import re
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Set, Tuple

from ..finding import Finding
from ..registry import ProjectRule, register

__all__ = ["MetricContractRule"]

DEFAULT_BASELINES = ("benchmarks/baselines.json",)
DEFAULT_PRODUCERS = ("benchmarks",)
DEFAULT_EXTRA_NAMES = ("run.wall_seconds", "run.cpu_seconds")

#: ``repro.obs.ledger.flatten_report`` histogram expansion suffixes.
HISTOGRAM_SUFFIXES = (".count", ".sum", ".mean", ".min", ".max", ".p50", ".p90", ".p99")
#: ``benchmarks/_record.flatten_timings`` per-timing suffixes.
TIMING_SUFFIXES = (".seconds", ".requests_per_second")

#: Name-like string literals worth treating as metric-name atoms: dotted
#: or labelled identifiers, no newlines, not prose.
_ATOM_RE = re.compile(r"^[A-Za-z_*][A-Za-z0-9_*]*(?:[ .=-][A-Za-z0-9_*%=]+)*$")
_MAX_ATOM_LEN = 64

#: Process-lifetime memo of producer-file scans, keyed by (path, size, mtime_ns).
_producer_memo: Dict[Tuple[str, int, int], List[str]] = {}


def _name_like(text: str) -> bool:
    """Name-like and meaningfully constraining (not an all-wildcard pattern)."""
    return (
        0 < len(text) <= _MAX_ATOM_LEN
        and bool(_ATOM_RE.match(text))
        and text.replace("*", "").strip(" .=-") != ""
    )


def _producer_atoms(path: str) -> List[str]:
    """Name-like string atoms (f-string fields as ``*``) in one producer file."""
    try:
        stat = os.stat(path)
        key = (path, stat.st_size, stat.st_mtime_ns)
    except OSError:
        return []
    cached = _producer_memo.get(key)
    if cached is not None:
        return cached
    atoms: Set[str] = set()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read())
    except (OSError, SyntaxError, ValueError):
        _producer_memo[key] = []
        return []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _name_like(node.value):
                atoms.add(node.value)
        elif isinstance(node, ast.JoinedStr):
            parts = [
                piece.value
                if isinstance(piece, ast.Constant) and isinstance(piece.value, str)
                else "*"
                for piece in node.values
            ]
            pattern = "".join(parts)
            if _name_like(pattern):
                atoms.add(pattern)
    result = sorted(atoms)
    _producer_memo[key] = result
    return result


def _baseline_name_line(text: str, name: str) -> int:
    """1-based line of the quoted metric name in the baseline file, or 1."""
    needle = json.dumps(name)
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    return 1


@register
class MetricContractRule(ProjectRule):
    id = "RC009"
    description = "baseline metric names must match a name the sources can produce"
    severity = "error"
    hint = (
        "update the baseline key to the metric's current name (repro runs check "
        "--update after an intentional rename) or restore the producing call site"
    )

    def check_project(self, project, config) -> Iterator[Finding]:
        root = getattr(config, "root", ".") or "."
        baselines = [
            os.path.join(root, p) if not os.path.isabs(p) else p
            for p in self.options.get("baselines", list(DEFAULT_BASELINES))
        ]
        producers = [
            os.path.join(root, p) if not os.path.isabs(p) else p
            for p in self.options.get("producers", list(DEFAULT_PRODUCERS))
        ]
        patterns = self._patterns(project, producers)
        for baseline_path in baselines:
            if not os.path.isfile(baseline_path):
                continue
            yield from self._check_baseline(baseline_path, patterns)

    def _patterns(self, project, producers: List[str]) -> List[str]:
        patterns: Set[str] = set(
            str(n) for n in self.options.get("extra_names", list(DEFAULT_EXTRA_NAMES))
        )
        for summary in project.summaries():
            for kind, pattern, _line, _col in summary.get("metric_sites", []):
                if not _name_like(pattern):
                    continue  # an all-dynamic name constrains nothing
                patterns.add(pattern)
                if kind in ("histogram", "timer"):
                    patterns.update(pattern + suffix for suffix in HISTOGRAM_SUFFIXES)
        for producer in producers:
            files: List[str] = []
            if os.path.isdir(producer):
                for dirpath, dirnames, filenames in os.walk(producer):
                    dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                    files.extend(
                        os.path.join(dirpath, f)
                        for f in sorted(filenames)
                        if f.endswith(".py")
                    )
            elif os.path.isfile(producer):
                files.append(producer)
            for path in files:
                for atom in _producer_atoms(path):
                    patterns.add(atom)
                    patterns.update(atom + suffix for suffix in TIMING_SUFFIXES)
        return sorted(patterns)

    def _check_baseline(self, path: str, patterns: List[str]) -> Iterator[Finding]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            doc = json.loads(text)
        except (OSError, ValueError) as exc:
            yield self.finding_at(
                path.replace(os.sep, "/"), 1, 0,
                f"baseline file cannot be read as JSON: {exc}",
                hint="fix the baseline file so the perf gate can parse it",
            )
            return
        records = doc.get("records", {}) if isinstance(doc, dict) else {}
        report_path = path.replace(os.sep, "/")
        for kind in sorted(records):
            metrics = records[kind].get("metrics", {}) if isinstance(records[kind], dict) else {}
            for name in sorted(metrics):
                if any(fnmatch(name, pattern) for pattern in patterns):
                    continue
                yield self.finding_at(
                    report_path, _baseline_name_line(text, name), 0,
                    f"baseline metric '{name}' (record kind '{kind}') matches no "
                    "metric name produced by the linted sources or producer "
                    "scripts — the perf gate would fail or go vacuous",
                )
