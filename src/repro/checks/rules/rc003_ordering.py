"""RC003 — no unordered iteration in merge paths.

The engine guarantees bit-identical results at any worker count by
merging partial states **in sorted unit order** and iterating
deterministic structures.  A ``for x in set(...)`` inside
``Analyzer.consume`` / ``merge`` / ``finalize`` or the metrics
``snapshot`` / ``merge_snapshot`` paths reintroduces hash-order
dependence: the set's iteration order varies with insertion history (and,
for strings, with ``PYTHONHASHSEED``), so floating-point accumulation and
tie-breaking can drift between runs.  Wrap the iterable in ``sorted(...)``
or keep an ordered structure instead.  Plain ``dict`` iteration is *not*
flagged — insertion order is deterministic when the inserts are — but
sets and frozensets always are.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..finding import Finding
from ..registry import Module, Rule, register
from .common import MERGE_SCOPE_NAMES, iter_scope_functions

__all__ = ["UnorderedMergeIterationRule"]

#: Wrappers that make iteration order irrelevant or explicit.
_ORDERING = frozenset({"sorted"})
#: Wrappers that pass their first argument's order straight through.
_TRANSPARENT = frozenset({"enumerate", "list", "tuple", "reversed", "iter"})
#: Constructors whose result iterates in hash order.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: Set methods whose result iterates in hash order.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
#: Binary operators that combine sets into sets.
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_producing(expr: ast.AST) -> bool:
    """Evidently produces a set (or dict keys view, which ops into a set)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in _SET_CONSTRUCTORS:
            return True
        if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
            _SET_METHODS | {"keys"}
        ):
            return True
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
        return _is_set_producing(expr.left) or _is_set_producing(expr.right)
    return False


def _unordered_iterable(expr: ast.AST) -> Optional[str]:
    """Why ``expr`` iterates in hash order, or None when it is safe."""
    while isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        name = expr.func.id
        if name in _ORDERING:
            return None
        if name in _TRANSPARENT and expr.args:
            expr = expr.args[0]
            continue
        if name in _SET_CONSTRUCTORS:
            return f"{name}(...) iterates in hash order"
        break
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set literal iterates in hash order"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _SET_METHODS
    ):
        return f".{expr.func.attr}(...) returns a set (hash order)"
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
        # dict | dict merges stay ordered; flag only when a side is
        # evidently a set (or a keys view, whose set-ops yield sets).
        if _is_set_producing(expr.left) or _is_set_producing(expr.right):
            return "set arithmetic yields a set (hash order)"
    return None


@register
class UnorderedMergeIterationRule(Rule):
    id = "RC003"
    description = "merge paths must iterate deterministically ordered structures"
    severity = "error"
    hint = "wrap the iterable in sorted(...) or accumulate into an ordered structure"

    def check(self, module: Module) -> Iterator[Finding]:
        for func in iter_scope_functions(module.tree, MERGE_SCOPE_NAMES):
            for node in ast.walk(func):
                iters = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    reason = _unordered_iterable(it)
                    if reason is not None:
                        yield module.finding(
                            self, it,
                            f"iteration over an unordered structure in "
                            f"{func.name}(): {reason}",
                        )
