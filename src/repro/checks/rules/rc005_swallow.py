"""RC005 — no silently swallowed exceptions.

A malformed trace row that raises inside an analyzer must surface, not
vanish: TraceTracker-style silent divergence (a pipeline that "works" on
corrupt input) invalidates every downstream number.  This rule flags

* bare ``except:`` anywhere (it catches ``KeyboardInterrupt`` and
  ``SystemExit`` too), and
* ``except Exception:`` / ``except BaseException:`` handlers whose body
  is only ``pass`` / ``...`` — the classic swallow.

Handlers that *do* something (log, count, re-raise, fall back with
``continue`` at a designated chunk-fallback site) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..registry import Module, Rule, register

__all__ = ["SwallowedExceptionRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _body_is_noop(body) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


@register
class SwallowedExceptionRule(Rule):
    id = "RC005"
    description = "exceptions must not be silently swallowed"
    severity = "error"
    hint = (
        "catch the narrowest exception that can actually occur, and handle "
        "it (log / count / fall back) rather than pass"
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self, node,
                    "bare except: catches everything, including "
                    "KeyboardInterrupt and SystemExit",
                )
            elif (
                isinstance(node.type, ast.Name)
                and node.type.id in _BROAD
                and _body_is_noop(node.body)
            ):
                yield module.finding(
                    self, node,
                    f"except {node.type.id}: pass swallows malformed-input "
                    "errors silently",
                )
