"""RC007 — ``required_columns`` must match what ``consume`` actually reads.

The query planner (:mod:`repro.engine.plan`) prunes every column an
analyzer does not declare; touching an undeclared one raises
:class:`~repro.engine.chunks.ColumnPrunedError` — but only on the code
path a test happens to execute.  This rule proves the contract at lint
time: for every class that declares a static ``required_columns`` tuple
and defines ``consume``, it computes the set of chunk columns reachable
from ``consume`` by bounded dataflow over the project model —

* direct attribute reads off the chunk parameter (``chunk.sizes``),
* methods called on it, resolved through the parameter's annotation to
  the class's own column reads (``chunk.block_expansion`` reads
  ``self.offsets`` and ``self.sizes``), transitively through
  ``self``-calls inside that class,
* helper functions/methods the chunk is forwarded to, anywhere in the
  linted project, recursively to a small depth —

and compares it against the declaration.  An undeclared *core* column
read is an error (that exact read raises at runtime under pruning); an
undeclared read of an optional column (``response_times`` is served as
``None`` when pruned) and a declared-but-never-read column are
warnings.  Findings anchor at the access site inside ``consume`` (or
the call site that leads to it), so the report names both the column
and where it is touched.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..finding import Finding
from ..registry import ProjectRule, register

__all__ = ["ColumnContractRule"]

#: The chunk column universe (mirrors ``repro.engine.plan.ALL_COLUMNS``;
#: kept literal so the linter never imports the engine).  Override with
#: ``columns`` / ``optional_columns`` rule options.
DEFAULT_COLUMNS = ("timestamps", "offsets", "sizes", "is_write", "response_times")
DEFAULT_OPTIONAL = ("response_times",)

_MAX_DEPTH = 4

#: column -> (line, col, via-description)
_Accesses = Dict[str, Tuple[int, int, str]]


@register
class ColumnContractRule(ProjectRule):
    id = "RC007"
    description = "analyzer required_columns must cover every chunk column consume reads"
    severity = "error"
    hint = (
        "add the column to required_columns (or stop reading it); the planner "
        "prunes undeclared columns and the read raises ColumnPrunedError at runtime"
    )

    def check_project(self, project, config) -> Iterator[Finding]:
        universe = tuple(self.options.get("columns", DEFAULT_COLUMNS))
        optional = set(self.options.get("optional_columns", DEFAULT_OPTIONAL))
        for summary in project.summaries():
            for cls_name in sorted(summary["classes"]):
                cls = summary["classes"][cls_name]
                declared_info = cls.get("required_columns")
                if declared_info is None or "consume" not in cls["methods"]:
                    continue
                yield from self._check_analyzer(
                    project, summary, cls_name, declared_info, universe, optional
                )

    def _check_analyzer(
        self,
        project,
        summary: Dict[str, Any],
        cls_name: str,
        declared_info: Dict[str, Any],
        universe: Sequence[str],
        optional: Set[str],
    ) -> Iterator[Finding]:
        consume = project.method_function(summary, cls_name, "consume")
        if consume is None:
            return
        owner, fn = consume
        if len(fn["params"]) < 3:
            return  # not the (self, state, chunk) shape this contract covers
        chunk_param = fn["params"][2]
        accesses: _Accesses = {}
        _param_columns(
            project, owner, fn, chunk_param, cls_name, set(universe),
            accesses, anchor=None, via="", depth=_MAX_DEPTH, seen=set(),
        )
        declared = list(declared_info["cols"])
        path = owner["path"]
        for column in sorted(accesses):
            if column in declared:
                continue
            line, col, via = accesses[column]
            where = f" ({via})" if via else ""
            if column in optional:
                yield self.finding_at(
                    path, line, col,
                    f"{cls_name}.consume reads optional column '{column}'{where} "
                    "without declaring it — the planner serves None there",
                    severity="warning",
                    hint=f"declare '{column}' in {cls_name}.required_columns or guard the read",
                )
            else:
                yield self.finding_at(
                    path, line, col,
                    f"{cls_name}.consume reads column '{column}'{where} but "
                    f"required_columns {tuple(declared)!r} does not declare it",
                )
        if accesses:  # an empty footprint means abstract/indirect consume: stay quiet
            decl_line, decl_col = declared_info["site"]
            for column in declared:
                if column in universe and column not in accesses:
                    yield self.finding_at(
                        path, decl_line, decl_col,
                        f"{cls_name}.required_columns declares '{column}' but "
                        "consume never reads it — the data path loads it for nothing",
                        severity="warning",
                        hint="drop unused columns from required_columns so the "
                        "planner can prune them",
                    )


def _param_columns(
    project,
    summary: Dict[str, Any],
    fn: Dict[str, Any],
    param: str,
    cls_ctx: Optional[str],
    universe: Set[str],
    out: _Accesses,
    anchor: Optional[Tuple[int, int]],
    via: str,
    depth: int,
    seen: Set[Tuple[str, str, str]],
) -> None:
    """Columns reachable from ``param`` inside ``fn``, recorded into ``out``."""
    key = (summary["module"], fn["qualname"], param)
    if depth <= 0 or key in seen:
        return
    seen.add(key)

    def record(column: str, site: Sequence[int], note: str) -> None:
        if column not in out:
            line, col = anchor if anchor is not None else (site[0], site[1])
            out[column] = (line, col, via or note)

    for attr, site in fn["attr_reads"].get(param, {}).items():
        if attr in universe:
            record(attr, site, "")

    annotation = fn["annotations"].get(param)
    for method, line, col in fn["method_calls"].get(param, []):
        if annotation is None:
            continue
        resolved = project.resolve_in(summary, annotation.split("."))
        if resolved is None or resolved[0] != "class":
            continue
        _, cls_owner, target_cls = resolved
        for column, note in _class_self_columns(
            project, cls_owner, target_cls, method, universe, depth - 1, seen
        ):
            record(column, (line, col), f"via {target_cls}.{method}(){note}")

    for callee, position, kw, line, col in fn["forwards"].get(param, []):
        resolved = project.resolve_call(summary, callee, cls_ctx=cls_ctx)
        if resolved is None or resolved[0] != "function":
            continue
        _, callee_owner, qualname = resolved
        callee_fn = callee_owner["functions"].get(qualname)
        if callee_fn is None:
            continue
        target_param = _map_argument(callee_fn, callee, position, kw)
        if target_param is None:
            continue
        callee_cls = qualname.split(".")[0] if "." in qualname else None
        _param_columns(
            project, callee_owner, callee_fn, target_param, callee_cls,
            universe, out,
            anchor=anchor if anchor is not None else (line, col),
            via=via or f"via {callee}()",
            depth=depth - 1, seen=seen,
        )


def _map_argument(
    callee_fn: Dict[str, Any], callee: str, position: int, kw: Optional[str]
) -> Optional[str]:
    """The callee parameter an argument lands on, accounting for ``self``."""
    params: List[str] = callee_fn["params"]
    if kw is not None:
        if kw in params or kw in callee_fn["kwparams"]:
            return kw
        return None
    offset = 1 if "." in callee_fn["qualname"] and not callee.startswith("self.") else 0
    if callee.startswith("self."):
        offset = 1
    index = position + offset
    return params[index] if 0 <= index < len(params) else None


def _class_self_columns(
    project,
    owner: Dict[str, Any],
    cls_name: str,
    method: str,
    universe: Set[str],
    depth: int,
    seen: Set[Tuple[str, str, str]],
) -> List[Tuple[str, str]]:
    """Columns a method reads off ``self``, following same-class calls."""
    if depth <= 0:
        return []
    found = project.method_function(owner, cls_name, method)
    if found is None:
        return []
    method_owner, fn = found
    if not fn["params"]:
        return []
    self_param = fn["params"][0]
    key = (method_owner["module"], fn["qualname"], f"self:{self_param}")
    if key in seen:
        return []
    seen.add(key)
    out: List[Tuple[str, str]] = []
    for attr in fn["attr_reads"].get(self_param, {}):
        if attr in universe:
            out.append((attr, ""))
    for inner, _line, _col in fn["method_calls"].get(self_param, []):
        for column, note in _class_self_columns(
            project, method_owner, cls_name, inner, universe, depth - 1, seen
        ):
            out.append((column, f" -> {cls_name}.{inner}(){note}"))
    return out
