"""Linter configuration: ``[tool.repro.checks]`` in ``pyproject.toml``.

Example::

    [tool.repro.checks]
    paths = ["src/repro"]
    exclude = ["*/_vendored/*"]

    [tool.repro.checks.rules.RC002]
    severity = "error"
    exclude = ["*/obs/*"]

    [tool.repro.checks.rules.RC006]
    enabled = true

Per-rule blocks may set ``enabled`` (bool), ``severity`` (``error`` /
``warning``), and ``include`` / ``exclude`` (fnmatch patterns matched
against the linted file's path as given, POSIX separators).  Path
patterns *extend* the rule's built-in defaults rather than replacing
them, so scoping encoded in a rule (e.g. RC002's obs allowlist) survives
a partial config.

TOML parsing uses :mod:`tomllib` (Python >= 3.11) and degrades to the
built-in defaults when no TOML reader is available — the default rule
pack is written so the shipped ``pyproject.toml`` block is declarative
documentation of the defaults, not a behavioural requirement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Sequence

from .finding import SEVERITIES
from .registry import Rule

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on Python <= 3.10
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

__all__ = ["CheckConfig", "RuleConfig", "load_config"]

#: Default lint roots when neither CLI paths nor config give any.
DEFAULT_PATHS = ("src/repro",)


#: Per-rule table keys the dataclass claims; everything else becomes
#: free-form rule ``options`` (e.g. RC009's ``baselines``/``producers``).
_RULE_TABLE_KEYS = frozenset({"enabled", "severity", "include", "exclude"})


@dataclass
class RuleConfig:
    """Per-rule settings layered over the rule's own defaults."""

    enabled: bool = True
    severity: Optional[str] = None
    include: List[str] = field(default_factory=list)
    exclude: List[str] = field(default_factory=list)
    options: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_table(cls, table: Dict[str, Any], rule_id: str) -> "RuleConfig":
        severity = table.get("severity")
        if severity is not None and severity not in SEVERITIES:
            raise ValueError(
                f"rule {rule_id}: severity must be one of {SEVERITIES}, got {severity!r}"
            )
        return cls(
            enabled=bool(table.get("enabled", True)),
            severity=severity,
            include=[str(p) for p in table.get("include", [])],
            exclude=[str(p) for p in table.get("exclude", [])],
            options={k: v for k, v in table.items() if k not in _RULE_TABLE_KEYS},
        )


@dataclass
class CheckConfig:
    """Whole-run settings: lint roots plus per-rule overrides."""

    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    exclude: List[str] = field(default_factory=list)
    rules: Dict[str, RuleConfig] = field(default_factory=dict)
    #: Directory the config was loaded from (anchors relative rule options
    #: like RC009's baseline paths, and the default cache location).
    root: str = "."
    #: Incremental-cache directory; relative paths resolve against ``root``.
    cache_dir: Optional[str] = None

    def rule_config(self, rule_id: str) -> RuleConfig:
        return self.rules.get(rule_id, RuleConfig())

    def file_excluded(self, path: str) -> bool:
        return _matches(path, self.exclude)

    def rule_applies(self, rule: Rule, path: str) -> bool:
        """Should ``rule`` run on ``path``, given defaults + config scoping?"""
        cfg = self.rule_config(rule.id)
        if not cfg.enabled:
            return False
        include = list(rule.default_include) + cfg.include
        if include and not _matches(path, include):
            return False
        exclude = list(rule.default_exclude) + cfg.exclude
        return not _matches(path, exclude)

    def effective_severity(self, rule: Rule) -> str:
        override = self.rule_config(rule.id).severity
        return override if override is not None else rule.severity


def _matches(path: str, patterns: Sequence[str]) -> bool:
    normalized = path.replace("\\", "/")
    return any(fnmatch(normalized, pattern) for pattern in patterns)


def load_config(pyproject_path: Optional[str] = None) -> CheckConfig:
    """Config from a ``pyproject.toml``, or pure defaults.

    ``pyproject_path=None`` returns defaults.  A missing
    ``[tool.repro.checks]`` table also returns defaults.  Asking for an
    explicit path without a TOML reader on this interpreter is an error;
    silently ignoring the file would un-gate the CI lint job.
    """
    if pyproject_path is None:
        return CheckConfig()
    if _toml is None:  # pragma: no cover - Python <= 3.10 without tomli
        raise RuntimeError(
            "reading pyproject.toml needs tomllib (Python >= 3.11) or tomli"
        )
    with open(pyproject_path, "rb") as fh:
        data = _toml.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("checks", {})
    rules = {
        rule_id: RuleConfig.from_table(rule_table, rule_id)
        for rule_id, rule_table in table.get("rules", {}).items()
    }
    cache_dir = table.get("cache_dir")
    return CheckConfig(
        paths=[str(p) for p in table.get("paths", list(DEFAULT_PATHS))],
        exclude=[str(p) for p in table.get("exclude", [])],
        rules=rules,
        root=os.path.dirname(os.path.abspath(pyproject_path)) or ".",
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )
