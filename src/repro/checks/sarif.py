"""SARIF 2.1.0 output: lint findings as a standard exchange document.

SARIF (Static Analysis Results Interchange Format, OASIS) is what CI
annotation tooling and code-scanning UIs ingest; emitting it makes the
RC rule pack composable with that ecosystem the same way the run-record
schema makes benchmarks composable with ``repro runs``.

The document shape (one run, one driver)::

    {
      "$schema": ".../sarif-schema-2.1.0.json",
      "version": "2.1.0",
      "runs": [{
        "tool": {"driver": {"name": "repro-lint", "rules": [...]}},
        "results": [{"ruleId", "ruleIndex", "level", "message",
                     "locations": [{"physicalLocation": ...}]}]
      }]
    }

Findings map 1:1 onto ``results``; every registered rule appears in the
driver's ``rules`` array (with its description as ``shortDescription``
and its fix hint as ``help``) so viewers can show rule metadata even
for rules with no findings.  SARIF columns are 1-based where findings
are 0-based, hence the ``col + 1``.

:func:`validate_sarif` structurally checks a document against the
subset of the 2.1.0 schema this module emits — required properties,
types, level enum, 1-based regions — without a network fetch or a JSON
Schema engine, so tests and CI can assert validity hermetically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .finding import Finding
from .registry import Rule, all_rules

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "format_sarif", "sarif_dict", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF result levels; findings' severities map onto these directly.
_LEVELS = ("none", "note", "warning", "error")


def sarif_dict(
    findings: Sequence[Finding], rules: Optional[Sequence[Rule]] = None
) -> Dict[str, Any]:
    """The findings as a SARIF 2.1.0 document (JSON-ready dict)."""
    pack = list(rules) if rules is not None else all_rules()
    rule_index = {rule.id: i for i, rule in enumerate(pack)}
    descriptors: List[Dict[str, Any]] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description},
            "help": {"text": rule.hint},
            "defaultConfiguration": {
                "level": rule.severity if rule.severity in _LEVELS else "error"
            },
        }
        for rule in pack
    ]
    results: List[Dict[str, Any]] = []
    for finding in sorted(findings):
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": finding.severity if finding.severity in _LEVELS else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(
    findings: Sequence[Finding], rules: Optional[Sequence[Rule]] = None
) -> str:
    return json.dumps(sarif_dict(findings, rules=rules), indent=2, sort_keys=True)


def validate_sarif(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed SARIF 2.1.0 log.

    Covers the properties this emitter produces (the subset CI relies
    on): top-level ``version``/``runs``, tool driver naming, rule
    descriptors, and per-result message/level/location shape.
    """
    if not isinstance(doc, dict):
        raise ValueError("SARIF log must be a JSON object")
    if doc.get("version") != SARIF_VERSION:
        raise ValueError(f"SARIF version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        raise ValueError("SARIF log must carry a non-empty 'runs' array")
    for run in runs:
        if not isinstance(run, dict):
            raise ValueError("each SARIF run must be an object")
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            raise ValueError("each SARIF run needs tool.driver.name")
        for descriptor in driver.get("rules", []):
            if not isinstance(descriptor, dict) or not isinstance(descriptor.get("id"), str):
                raise ValueError("each SARIF rule descriptor needs a string 'id'")
        results = run.get("results", [])
        if not isinstance(results, list):
            raise ValueError("SARIF run 'results' must be an array")
        for result in results:
            _validate_result(result, driver.get("rules", []))


def _validate_result(result: Any, descriptors: List[Any]) -> None:
    if not isinstance(result, dict):
        raise ValueError("each SARIF result must be an object")
    message = result.get("message")
    if not isinstance(message, dict) or not isinstance(message.get("text"), str):
        raise ValueError("each SARIF result needs message.text")
    if result.get("level") not in _LEVELS:
        raise ValueError(f"SARIF result level must be one of {_LEVELS}")
    if "ruleIndex" in result:
        index = result["ruleIndex"]
        if not isinstance(index, int) or not 0 <= index < len(descriptors):
            raise ValueError("SARIF ruleIndex out of range of the driver's rules")
        if descriptors[index].get("id") != result.get("ruleId"):
            raise ValueError("SARIF ruleIndex does not match ruleId")
    for location in result.get("locations", []):
        physical = location.get("physicalLocation") if isinstance(location, dict) else None
        if not isinstance(physical, dict):
            raise ValueError("each SARIF location needs a physicalLocation")
        artifact = physical.get("artifactLocation")
        if not isinstance(artifact, dict) or not isinstance(artifact.get("uri"), str):
            raise ValueError("each SARIF physicalLocation needs artifactLocation.uri")
        region = physical.get("region", {})
        for key in ("startLine", "startColumn"):
            if key in region and (not isinstance(region[key], int) or region[key] < 1):
                raise ValueError(f"SARIF region {key} must be a positive integer")
