"""The linter's result record.

A :class:`Finding` is one rule violation at one source location.  Findings
sort by ``(path, line, col, rule)`` so reports are deterministic regardless
of rule execution order — the same invariant the rules themselves enforce
on the analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["SEVERITIES", "Finding"]

#: Recognized severities, strongest first.  ``error`` findings fail the
#: lint run (nonzero exit); ``warning`` findings are reported only.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Attributes:
        path: file the violation is in (as given to the driver).
        line: 1-based source line.
        col: 0-based column of the offending node.
        rule: rule id, e.g. ``"RC001"``.
        severity: ``"error"`` or ``"warning"``.
        message: what is wrong, specific to the site.
        hint: how to fix it (rule-level guidance).
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str = field(default="error", compare=False)
    message: str = field(default="", compare=False)
    hint: str = field(default="", compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order via sort_keys)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text
