"""``repro lint`` / ``python -m repro.checks`` — the lint entry point.

Exits 0 when the tree is clean (or every finding is warning-severity),
1 when any error-severity finding survives suppression, 2 on usage
errors.  ``--output`` writes the report to a file (the CI artifact) while
still printing it; ``--format json`` emits the machine document described
in :mod:`repro.checks.report`.
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from .config import load_config
from .driver import lint_paths
from .registry import all_rules
from .report import exit_code, format_json, format_text

__all__ = ["build_lint_parser", "main", "run_lint"]


def build_lint_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    """The lint argument surface (shared by ``repro lint`` and ``-m``)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="check the repro invariants (determinism, mergeability, "
            "picklability) with the RC rule pack",
        )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: paths from pyproject.toml, "
        "falling back to src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the report to PATH (e.g. the CI lint artifact)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all enabled rules)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: auto-discover from cwd)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _discover_pyproject() -> Optional[str]:
    here = os.getcwd()
    while True:
        candidate = os.path.join(here, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            return None
        here = parent


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}]  {rule.description}")
        return 0
    if args.no_config:
        pyproject = None
    elif args.config is not None:
        pyproject = args.config
    else:
        pyproject = _discover_pyproject()
    config = load_config(pyproject)
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select else None
    )
    findings = lint_paths(args.paths or None, config=config, select=select)
    report = format_json(findings) if args.format == "json" else format_text(findings)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return exit_code(findings)


def main(argv: Optional[List[str]] = None) -> int:
    return run_lint(build_lint_parser().parse_args(argv))
