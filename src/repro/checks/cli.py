"""``repro lint`` / ``python -m repro.checks`` — the lint entry point.

Exits 0 when the tree is clean (or every finding is warning-severity),
1 when any error-severity finding survives suppression, 2 on usage
errors.  ``--output`` writes the report to a file (the CI artifact) while
still printing it; ``--format json`` emits the machine document described
in :mod:`repro.checks.report`; ``--sarif PATH`` additionally writes a
SARIF 2.1.0 log (``--format sarif`` prints it instead).

The incremental cache (:mod:`repro.checks.cache`) is on by default and
lives under the config root; ``--no-cache`` disables it and
``--cache-dir`` relocates it.  ``--changed [REF]`` scopes *reported*
findings to files touched versus a git ref (default ``HEAD``) plus
untracked files — the whole-program pass still sees the full tree, so
cross-file contracts stay sound while iterating.
"""

from __future__ import annotations

import argparse
import os
import subprocess
from typing import List, Optional

from .cache import DEFAULT_CACHE_DIR, SummaryCache
from .config import CheckConfig, load_config
from .driver import lint_project
from .registry import all_rules
from .report import exit_code, format_json, format_text
from .sarif import format_sarif

__all__ = ["build_lint_parser", "main", "run_lint"]


def build_lint_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    """The lint argument surface (shared by ``repro lint`` and ``-m``)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="check the repro invariants (determinism, mergeability, "
            "picklability, cross-module contracts) with the RC rule pack",
        )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: paths from pyproject.toml, "
        "falling back to src/repro)",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the report to PATH (e.g. the CI lint artifact)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write a SARIF 2.1.0 log to PATH (independent of --format)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all enabled rules)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="only report findings in files changed vs REF (git diff + "
        "untracked; default REF: HEAD)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: auto-discover from cwd)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject.toml and run with built-in defaults",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental summary cache for this run",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"cache location (default: config cache_dir or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _discover_pyproject() -> Optional[str]:
    here = os.getcwd()
    while True:
        candidate = os.path.join(here, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            return None
        here = parent


def _changed_files(ref: str) -> Optional[List[str]]:
    """Files changed vs ``ref`` plus untracked files, or None on git failure."""
    changed: List[str] = []
    for args in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        changed.extend(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return changed


def _resolve_cache(args: argparse.Namespace, config: CheckConfig) -> Optional[SummaryCache]:
    if args.no_cache:
        return None
    directory = args.cache_dir or config.cache_dir or DEFAULT_CACHE_DIR
    if not os.path.isabs(directory):
        directory = os.path.join(config.root, directory)
    return SummaryCache(directory)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity}/{rule.scope}]  {rule.description}")
        return 0
    if args.no_config:
        pyproject = None
    elif args.config is not None:
        pyproject = args.config
    else:
        pyproject = _discover_pyproject()
    config = load_config(pyproject)
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select else None
    )
    only_paths: Optional[List[str]] = None
    if args.changed is not None:
        only_paths = _changed_files(args.changed)
        if only_paths is None:
            print(f"repro lint: cannot resolve --changed against {args.changed!r} "
                  "(not a git checkout?)")
            return 2
    run = lint_project(
        args.paths or None,
        config=config,
        select=select,
        cache=_resolve_cache(args, config),
        only_paths=only_paths,
    )
    if args.format == "json":
        report = format_json(run.findings, stats=run.stats)
    elif args.format == "sarif":
        report = format_sarif(run.findings)
    else:
        report = format_text(run.findings)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(format_sarif(run.findings) + "\n")
    return exit_code(run.findings)


def main(argv: Optional[List[str]] = None) -> int:
    return run_lint(build_lint_parser().parse_args(argv))
