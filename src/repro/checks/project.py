"""The whole-program pass: per-file summaries and cross-module resolution.

Per-file rules see one AST at a time; the contract rules added in the
RC007–RC010 pack need to see *across* files — an analyzer's ``consume``
calls a helper two modules away, an env var is read here and written
there, a metric name is minted in ``src/repro`` but gated from
``benchmarks/baselines.json``.  This module provides the shared
infrastructure:

* :func:`extract_summary` walks one parsed file and distills everything
  the project rules need into a plain JSON-able dict (imports with
  *relative* imports resolved against the inferred module name,
  module-level string constants, per-function dataflow facts, per-class
  method tables and ``required_columns`` declarations, ``os.environ``
  touch points, metric-registry call sites, and noqa suppressions).
  Summaries are deliberately source-free so the incremental cache
  (:mod:`repro.checks.cache`) can persist them verbatim.
* :class:`ProjectModel` indexes the summaries by module name and
  resolves dotted references across files — import chains, re-exports,
  classes, methods (following base classes), and module constants —
  with bounded depth so cyclic imports cannot hang the linter.

The dataflow captured per function is intentionally intra-procedural
and shallow: which attributes are read off each parameter, which
methods are called on it, and to which callees it is forwarded.  Rules
compose those facts across the project index into bounded
inter-procedural answers (e.g. "which ``Chunk`` columns are reachable
from ``SpatialAnalyzer.consume``") without ever simulating execution.
"""

from __future__ import annotations

import ast
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .noqa import collect_suppressions
from .registry import Module
from .rules.common import LOCK_CONSTRUCTORS, attribute_chain

__all__ = [
    "SUMMARY_VERSION",
    "ProjectModel",
    "extract_summary",
    "module_name_for",
    "render_annotation",
]

#: Bump when the summary schema changes; invalidates cached summaries.
SUMMARY_VERSION = 1

#: Registry method names treated as metric-producing call sites.
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "timer"})

#: ``os.environ`` access spellings, canonicalized through the import map.
_ENV_READ_CALLS = frozenset({"os.environ.get", "os.getenv"})
_ENV_WRITE_CALLS = frozenset({"os.environ.setdefault"})

_MAX_RESOLVE_DEPTH = 8


def module_name_for(path: str) -> str:
    """Infer the dotted module name of ``path`` from ``__init__.py`` chains.

    ``src/repro/engine/chunks.py`` -> ``repro.engine.chunks`` (``src`` has
    no ``__init__.py``, so the walk stops there).  A loose file outside
    any package resolves to its bare stem.
    """
    directory, filename = os.path.split(os.path.normpath(path))
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while directory and os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.append(package)
    return ".".join(reversed(parts)) or stem


def _resolve_relative(
    module_name: str, is_package: bool, level: int, target: Optional[str]
) -> str:
    """Absolute module named by a level-``level`` relative import."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: max(0, len(parts) - (level - 1))]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _collect_imports(tree: ast.AST, module_name: str, is_package: bool) -> Dict[str, str]:
    """Local name -> absolute dotted path, relative imports resolved."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module_name, is_package, node.level, node.module)
            elif node.module is not None:
                base = node.module
            else:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def render_annotation(node: Optional[ast.AST]) -> Optional[str]:
    """A parameter annotation as dotted text (``Chunk``, ``pkg.Chunk``), or None.

    String annotations pass through; ``Optional[X]`` unwraps to ``X``.
    Anything fancier (unions, generics) is out of scope for the bounded
    dataflow and renders as None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value or None
    if isinstance(node, (ast.Name, ast.Attribute)):
        chain = attribute_chain(node)
        return ".".join(chain) if chain else None
    if isinstance(node, ast.Subscript):
        base = render_annotation(node.value)
        if base is not None and base.split(".")[-1] == "Optional":
            return render_annotation(node.slice)
    return None


def _site(node: ast.AST) -> List[int]:
    return [getattr(node, "lineno", 1), getattr(node, "col_offset", 0)]


def _str_tuple(node: ast.AST) -> Optional[List[str]]:
    """Elements of a tuple/list of string constants, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


class _FunctionScan:
    """One function's intra-procedural facts, in summary-dict form."""

    def __init__(self, fn: ast.AST, qualname: str, canonical: Callable[[ast.AST], Optional[str]]):
        args = fn.args  # type: ignore[attr-defined]
        self.params: List[str] = [a.arg for a in list(args.posonlyargs) + list(args.args)]
        self.kwparams: List[str] = [a.arg for a in args.kwonlyargs]
        self.annotations: Dict[str, str] = {}
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            rendered = render_annotation(a.annotation)
            if rendered is not None:
                self.annotations[a.arg] = rendered
        self.qualname = qualname
        self.canonical = canonical
        # param-root alias map: local name -> originating parameter
        self.alias: Dict[str, str] = {p: p for p in self.params + self.kwparams}
        self.attr_reads: Dict[str, Dict[str, List[int]]] = {}
        self.method_calls: Dict[str, List[List[Any]]] = {}
        self.forwards: Dict[str, List[List[Any]]] = {}
        self.returns: List[List[Any]] = []
        self.unpicklable_assigns: List[List[Any]] = []
        self.attr_call_assigns: List[List[Any]] = []
        for stmt in fn.body:  # type: ignore[attr-defined]
            self._stmt(stmt)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "params": self.params,
            "kwparams": self.kwparams,
            "annotations": self.annotations,
            "attr_reads": self.attr_reads,
            "method_calls": self.method_calls,
            "forwards": self.forwards,
            "returns": self.returns,
            "unpicklable_assigns": self.unpicklable_assigns,
            "attr_call_assigns": self.attr_call_assigns,
        }

    # -- statement walk (in source order, so aliasing is flow-sensitive) -----

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are summarized (or not) on their own
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value)
            return
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                self._expr(stmt.value)
                self._assign_target(stmt.target, stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
                descriptor = self._return_descriptor(stmt.value)
                if descriptor is not None:
                    self.returns.append(descriptor)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, (ast.ExceptHandler, ast.withitem)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._expr(sub)

    def _assign_target(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Name) and value.id in self.alias:
                self.alias[target.id] = self.alias[value.id]
            else:
                self.alias.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.alias.pop(elt.id, None)
            return
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            if isinstance(value, ast.Call):
                chain = attribute_chain(value.func)
                if chain:
                    self.attr_call_assigns.append(
                        [target.attr, ".".join(chain)] + _site(value)
                    )
            reason = self._unpicklable_reason(value)
            if reason is not None:
                self.unpicklable_assigns.append([target.attr, reason] + _site(value))

    # -- expression walk -----------------------------------------------------

    def _expr(self, node: ast.AST) -> None:
        if isinstance(node, ast.Lambda):
            return  # its params shadow ours; RC004 handles embedded lambdas
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in self.alias
                and isinstance(node.ctx, ast.Load)
            ):
                root = self.alias[node.value.id]
                self.attr_reads.setdefault(root, {}).setdefault(node.attr, _site(node))
                return
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for cond in child.ifs:
                    self._expr(cond)
            elif isinstance(child, ast.keyword):
                self._expr(child.value)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        chain = attribute_chain(func)
        callee = ".".join(chain) if chain else ""
        if (
            isinstance(func, ast.Attribute)
            and len(chain) == 2
            and chain[0] in self.alias
        ):
            root = self.alias[chain[0]]
            self.method_calls.setdefault(root, []).append([func.attr] + _site(node))
        elif isinstance(func, ast.Attribute):
            self._expr(func.value)
        elif not isinstance(func, ast.Name):
            self._expr(func)
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) and arg.id in self.alias and callee:
                self.forwards.setdefault(self.alias[arg.id], []).append(
                    [callee, position, None] + _site(node)
                )
            else:
                self._expr(arg)
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name) and kw.value.id in self.alias and callee:
                self.forwards.setdefault(self.alias[kw.value.id], []).append(
                    [callee, -1, kw.arg] + _site(node)
                )
            else:
                self._expr(kw.value)

    # -- value classification ------------------------------------------------

    def _unpicklable_reason(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda (unpicklable)"
        if isinstance(value, ast.GeneratorExp):
            return "a live generator (unpicklable)"
        if isinstance(value, ast.Call):
            qualname = self.canonical(value.func)
            if qualname in LOCK_CONSTRUCTORS:
                return f"a {qualname}() (unpicklable synchronization primitive)"
            if isinstance(value.func, ast.Name) and value.func.id == "open":
                return "an open file handle (unpicklable)"
        return None

    def _return_descriptor(self, value: ast.AST) -> Optional[List[Any]]:
        if isinstance(value, ast.Lambda):
            return ["lambda", None] + _site(value)
        if isinstance(value, ast.GeneratorExp):
            return ["genexp", None] + _site(value)
        if isinstance(value, ast.Call):
            qualname = self.canonical(value.func)
            if qualname in LOCK_CONSTRUCTORS:
                return ["lock", qualname] + _site(value)
            if isinstance(value.func, ast.Name) and value.func.id == "open":
                return ["open", None] + _site(value)
            chain = attribute_chain(value.func)
            if chain:
                return ["call", ".".join(chain)] + _site(value)
        return None


def _class_facts(
    cls: ast.ClassDef, canonical: Callable[[ast.AST], Optional[str]]
) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
    """(class summary, {qualname: function summary}) for one class."""
    methods: Dict[str, str] = {}
    functions: Dict[str, Dict[str, Any]] = {}
    required: Optional[Dict[str, Any]] = None
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{cls.name}.{stmt.name}"
            methods[stmt.name] = qualname
            functions[qualname] = _FunctionScan(stmt, qualname, canonical).as_dict()
            if stmt.name == "__init__" and required is None:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Assign):
                        continue
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "required_columns"
                            and isinstance(target.value, ast.Name)
                        ):
                            cols = _str_tuple(sub.value)
                            if cols is not None:
                                required = {"cols": cols, "site": _site(sub)}
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "required_columns":
                    cols = _str_tuple(stmt.value)
                    if cols is not None:
                        required = {"cols": cols, "site": _site(stmt)}
    bases = [".".join(attribute_chain(b)) for b in cls.bases if attribute_chain(b)]
    summary = {
        "line": cls.lineno,
        "bases": bases,
        "methods": methods,
        "required_columns": required,
    }
    return summary, functions


def _scan_env_and_metrics(
    tree: ast.AST,
    canonical: Callable[[ast.AST], Optional[str]],
    constants: Dict[str, str],
) -> Tuple[List[List[Any]], List[List[Any]], List[List[Any]]]:
    """(env reads, env writes, metric sites) anywhere in the file.

    Each env entry is ``[var, ref, line, col, scope]`` where exactly one
    of ``var`` (resolved literal) / ``ref`` (dotted constant reference,
    resolved later against the project) is non-null; ``scope`` is
    ``"module"`` for import-time reads.  Metric sites are
    ``[kind, pattern, line, col]`` with f-string fields widened to ``*``.
    """
    reads: List[List[Any]] = []
    writes: List[List[Any]] = []
    metrics: List[List[Any]] = []

    def name_of(node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, None
        if isinstance(node, ast.Name):
            value = constants.get(node.id)
            return (value, None) if value is not None else (None, None)
        if isinstance(node, ast.Attribute):
            dotted = canonical(node)
            return None, dotted
        return None, None

    def pattern_of(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.JoinedStr):
            parts: List[str] = []
            for piece in node.values:
                if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                    parts.append(piece.value)
                else:
                    parts.append("*")
            return "".join(parts) or None
        return None

    def walk(node: ast.AST, depth: int) -> None:
        in_function = depth > 0 or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in ast.iter_child_nodes(node):
            scope = "function" if in_function else "module"
            if isinstance(child, ast.Call):
                qualname = canonical(child.func)
                if qualname in _ENV_READ_CALLS and child.args:
                    var, ref = name_of(child.args[0])
                    if var is not None or ref is not None:
                        reads.append([var, ref] + _site(child) + [scope])
                elif qualname in _ENV_WRITE_CALLS and child.args:
                    var, ref = name_of(child.args[0])
                    if var is not None or ref is not None:
                        writes.append([var, ref] + _site(child) + [scope])
                chain = attribute_chain(child.func)
                if chain and chain[-1] in _METRIC_METHODS and child.args:
                    pattern = pattern_of(child.args[0])
                    if pattern is not None:
                        metrics.append([chain[-1], pattern] + _site(child))
            elif isinstance(child, ast.Subscript):
                if canonical(child.value) == "os.environ":
                    var, ref = name_of(child.slice)
                    if var is not None or ref is not None:
                        entry = [var, ref] + _site(child) + [scope]
                        if isinstance(child.ctx, ast.Store):
                            writes.append(entry)
                        elif isinstance(child.ctx, ast.Load):
                            reads.append(entry)
            walk(child, depth + (1 if in_function else 0))

    walk(tree, 0)
    return reads, writes, metrics


def extract_summary(module: Module, path: Optional[str] = None) -> Dict[str, Any]:
    """Distill one parsed file into the JSON-able project-summary dict."""
    file_path = path if path is not None else module.path
    is_package = os.path.basename(file_path) == "__init__.py"
    name = module_name_for(file_path)
    imports = _collect_imports(module.tree, name, is_package)

    def canonical(node: ast.AST) -> Optional[str]:
        chain = attribute_chain(node)
        if not chain:
            return None
        base = imports.get(chain[0])
        if base is None:
            return None
        return ".".join([base] + list(chain[1:]))

    constants: Dict[str, str] = {}
    functions: Dict[str, Dict[str, Any]] = {}
    classes: Dict[str, Dict[str, Any]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            if isinstance(stmt.value.value, str):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = stmt.value.value
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = _FunctionScan(stmt, stmt.name, canonical).as_dict()
        elif isinstance(stmt, ast.ClassDef):
            cls_summary, cls_functions = _class_facts(stmt, canonical)
            classes[stmt.name] = cls_summary
            functions.update(cls_functions)

    env_reads, env_writes, metric_sites = _scan_env_and_metrics(
        module.tree, canonical, constants
    )
    suppressions = {
        str(line): sorted(rules)
        for line, rules in collect_suppressions(module.text).items()
    }
    return {
        "version": SUMMARY_VERSION,
        "path": file_path,
        "module": name,
        "is_package": is_package,
        "imports": imports,
        "constants": constants,
        "suppressions": suppressions,
        "env_reads": env_reads,
        "env_writes": env_writes,
        "metric_sites": metric_sites,
        "functions": functions,
        "classes": classes,
    }


#: A resolution result: ("module" | "class" | "function", owner summary, local qualname).
Resolution = Tuple[str, Dict[str, Any], str]


class ProjectModel:
    """An index over every linted file's summary, with name resolution."""

    def __init__(self, summaries: Sequence[Dict[str, Any]]) -> None:
        self.by_path: Dict[str, Dict[str, Any]] = {s["path"]: s for s in summaries}
        self.by_module: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.by_path):
            summary = self.by_path[path]
            self.by_module[summary["module"]] = summary

    def summaries(self) -> List[Dict[str, Any]]:
        """Every summary, in path order (deterministic rule iteration)."""
        return [self.by_path[p] for p in sorted(self.by_path)]

    def suppressions_for(self, path: str) -> Dict[int, frozenset]:
        summary = self.by_path.get(path)
        if summary is None:
            return {}
        return {
            int(line): frozenset(rules)
            for line, rules in summary.get("suppressions", {}).items()
        }

    # -- name resolution -----------------------------------------------------

    def resolve_absolute(
        self, dotted: str, depth: int = _MAX_RESOLVE_DEPTH
    ) -> Optional[Resolution]:
        """Resolve an absolute dotted path against the project index."""
        if depth <= 0 or not dotted:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            summary = self.by_module.get(".".join(parts[:cut]))
            if summary is not None:
                return self._resolve_in(summary, parts[cut:], depth)
        return None

    def resolve_in(
        self, summary: Dict[str, Any], chain: Sequence[str], depth: int = _MAX_RESOLVE_DEPTH
    ) -> Optional[Resolution]:
        """Resolve a local reference chain within ``summary``'s namespace."""
        return self._resolve_in(summary, list(chain), depth)

    def _resolve_in(
        self, summary: Dict[str, Any], rest: List[str], depth: int
    ) -> Optional[Resolution]:
        if depth <= 0:
            return None
        if not rest:
            return "module", summary, ""
        head = rest[0]
        classes = summary["classes"]
        if head in classes:
            if len(rest) == 1:
                return "class", summary, head
            if len(rest) == 2 and rest[1] in classes[head]["methods"]:
                return "function", summary, classes[head]["methods"][rest[1]]
            return None
        if len(rest) == 1 and head in summary["functions"]:
            return "function", summary, head
        target = summary["imports"].get(head)
        if target is not None:
            return self.resolve_absolute(".".join([target] + rest[1:]), depth - 1)
        return None

    def resolve_call(
        self,
        summary: Dict[str, Any],
        callee: str,
        cls_ctx: Optional[str] = None,
        depth: int = _MAX_RESOLVE_DEPTH,
    ) -> Optional[Resolution]:
        """Resolve a call target as written (``helper``, ``mod.fn``, ``self.m``)."""
        if not callee:
            return None
        parts = callee.split(".")
        if parts[0] == "self":
            if cls_ctx is None or len(parts) != 2:
                return None
            found = self.method_function(summary, cls_ctx, parts[1])
            if found is None:
                return None
            owner, fn = found
            return "function", owner, fn["qualname"]
        return self._resolve_in(summary, parts, depth)

    def function(self, owner: Dict[str, Any], qualname: str) -> Optional[Dict[str, Any]]:
        return owner["functions"].get(qualname)

    def method_function(
        self,
        owner: Dict[str, Any],
        cls_name: str,
        method: str,
        depth: int = 4,
    ) -> Optional[Tuple[Dict[str, Any], Dict[str, Any]]]:
        """(owner summary, function summary) of a method, following bases."""
        if depth <= 0:
            return None
        cls = owner["classes"].get(cls_name)
        if cls is None:
            return None
        qualname = cls["methods"].get(method)
        if qualname is not None:
            fn = owner["functions"].get(qualname)
            if fn is not None:
                return owner, fn
        for base in cls["bases"]:
            resolved = self.resolve_in(owner, base.split("."))
            if resolved is None or resolved[0] != "class":
                continue
            found = self.method_function(resolved[1], resolved[2], method, depth - 1)
            if found is not None:
                return found
        return None

    def constant(self, dotted: str) -> Optional[str]:
        """A module-level string constant by absolute dotted name."""
        parts = dotted.rsplit(".", 1)
        if len(parts) != 2:
            return None
        summary = self.by_module.get(parts[0])
        if summary is None:
            return None
        return summary["constants"].get(parts[1])

    def env_var_name(self, entry: Sequence[Any]) -> Optional[str]:
        """Resolve one ``env_reads``/``env_writes`` entry to a variable name."""
        var, ref = entry[0], entry[1]
        if var is not None:
            return str(var)
        if ref is not None:
            return self.constant(str(ref))
        return None
