"""The lint driver: collect files, parse once, run every applicable rule.

Two passes share one parse per file:

* **per-file rules** (scope ``"file"``) visit each AST independently;
* **project rules** (scope ``"project"``, RC007–RC010) run once over a
  :class:`~repro.checks.project.ProjectModel` built from every file's
  summary, after all files are in.

Findings from both passes are filtered through per-line ``# repro:
noqa`` suppressions and returned sorted by ``(path, line, col, rule)``
— deterministic output for identical input, the same property the
rules police.

With a :class:`~repro.checks.cache.SummaryCache`, the per-file work
(parse, per-file findings, summary extraction) is served from disk for
files whose content hash, rule-pack fingerprint, and per-file config
key all match; the project pass always re-runs, but over cached
summaries it is cheap.  :class:`LintStats` reports the hit/miss split
so CI can assert warm runs actually reuse the cache.

Files that fail to parse produce an ``RC000`` syntax-error finding
instead of crashing the run: a file the linter cannot read is a file the
invariants cannot be verified on.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import rules as _rules  # noqa: F401  (imports register the rule pack)
from .cache import SummaryCache
from .config import CheckConfig
from .finding import Finding
from .noqa import collect_suppressions, is_suppressed
from .project import ProjectModel, extract_summary
from .registry import Module, ProjectRule, Rule, all_rules

__all__ = [
    "LintRun",
    "LintStats",
    "collect_files",
    "lint_files",
    "lint_paths",
    "lint_project",
    "lint_source",
]


@dataclass
class LintStats:
    """Driver accounting for one lint run (feeds the JSON report)."""

    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class LintRun:
    """Findings plus the stats that produced them."""

    findings: List[Finding] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)


def collect_files(paths: Iterable[str], config: CheckConfig) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            out.append(path)
    normalized = sorted({p.replace(os.sep, "/") for p in out})
    return [p for p in normalized if not config.file_excluded(p)]


def _select_rules(config: CheckConfig, select: Optional[Sequence[str]]) -> List[Rule]:
    chosen = all_rules()
    if select is not None:
        wanted = {s.upper() for s in select}
        chosen = [r for r in chosen if r.id in wanted]
    return [
        r.configured(
            severity=config.effective_severity(r),
            options=config.rule_config(r.id).options,
        )
        for r in chosen
    ]


def _analyze_source(
    text: str,
    path: str,
    config: CheckConfig,
    select: Optional[Sequence[str]],
) -> Tuple[List[Finding], Optional[dict]]:
    """(per-file findings, project summary) for one source string."""
    try:
        module = Module.from_source(text, path=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="RC000",
                    severity="error",
                    message=f"syntax error: {exc.msg}",
                    hint="fix the syntax error so invariants can be checked",
                )
            ],
            None,
        )
    suppressions = collect_suppressions(text)
    findings: List[Finding] = []
    for rule in _select_rules(config, select):
        if rule.scope != "file" or not config.rule_applies(rule, path):
            continue
        findings.extend(
            f for f in rule.check(module) if not is_suppressed(f, suppressions)
        )
    return sorted(findings), extract_summary(module, path)


def lint_source(
    text: str,
    path: str = "<snippet>",
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one source string with the per-file rules (the test seam)."""
    config = config if config is not None else CheckConfig()
    findings, _summary = _analyze_source(text, path, config, select)
    return findings


def _config_key(
    config: CheckConfig, select: Optional[Sequence[str]], path: str
) -> str:
    """Digest of everything (besides content) that shapes one file's result."""
    per_file = [
        (rule.id, config.effective_severity(rule))
        for rule in all_rules()
        if rule.scope == "file" and config.rule_applies(rule, path)
    ]
    payload = json.dumps(
        {"rules": per_file, "select": sorted(s.upper() for s in select) if select else None},
        sort_keys=True,
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def lint_files(
    files: Iterable[str],
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
    cache: Optional[SummaryCache] = None,
) -> List[Finding]:
    """Lint explicit files (both passes); returns all findings sorted."""
    return _lint_file_list(list(files), config, select, cache).findings


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint files/directories (defaulting to the config's ``paths``)."""
    return lint_project(paths, config=config, select=select).findings


def lint_project(
    paths: Optional[Sequence[str]] = None,
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
    cache: Optional[SummaryCache] = None,
    only_paths: Optional[Iterable[str]] = None,
) -> LintRun:
    """The full lint: per-file pass, project pass, optional cache + scoping.

    ``only_paths`` (the ``--changed`` mechanism) filters *findings* to
    the given files after both passes ran over the whole tree — project
    rules need every summary regardless, and a cross-file contract
    breach is reported wherever its anchor site is.
    """
    config = config if config is not None else CheckConfig()
    roots = list(paths) if paths else list(config.paths)
    return _lint_file_list(
        collect_files(roots, config), config, select, cache, only_paths
    )


def _lint_file_list(
    files: List[str],
    config: Optional[CheckConfig],
    select: Optional[Sequence[str]],
    cache: Optional[SummaryCache] = None,
    only_paths: Optional[Iterable[str]] = None,
) -> LintRun:
    config = config if config is not None else CheckConfig()
    stats = LintStats()
    findings: List[Finding] = []
    summaries: List[dict] = []
    for path in files:
        with open(path, "rb") as fh:
            blob = fh.read()
        stats.files += 1
        file_findings: Optional[List[Finding]] = None
        summary: Optional[dict] = None
        if cache is not None:
            content_hash = hashlib.sha256(blob).hexdigest()
            key = _config_key(config, select, path)
            hit = cache.load(path, content_hash, key)
            if hit is not None:
                file_findings, summary = hit
        if file_findings is None:
            text = blob.decode("utf-8")
            file_findings, summary = _analyze_source(text, path, config, select)
            if cache is not None:
                cache.store(path, content_hash, key, file_findings, summary)
        findings.extend(file_findings)
        if summary is not None:
            summaries.append(summary)

    project = ProjectModel(summaries)
    for rule in _select_rules(config, select):
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project, config):
            if not config.rule_applies(rule, finding.path):
                continue
            if is_suppressed(finding, project.suppressions_for(finding.path)):
                continue
            findings.append(finding)

    if only_paths is not None:
        wanted: Set[str] = {os.path.abspath(p) for p in only_paths}
        findings = [f for f in findings if os.path.abspath(f.path) in wanted]
    if cache is not None:
        stats.cache_hits, stats.cache_misses = cache.hits, cache.misses
    return LintRun(findings=sorted(findings), stats=stats)
