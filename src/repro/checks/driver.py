"""The lint driver: collect files, parse once, run every applicable rule.

Each file is parsed exactly once; every enabled rule whose path scoping
matches then visits the shared AST.  Findings are filtered through
per-line ``# repro: noqa`` suppressions and returned sorted by
``(path, line, col, rule)`` — deterministic output for identical input,
the same property the rules police.

Files that fail to parse produce an ``RC000`` syntax-error finding
instead of crashing the run: a file the linter cannot read is a file the
invariants cannot be verified on.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from . import rules as _rules  # noqa: F401  (imports register the rule pack)
from .config import CheckConfig
from .finding import Finding
from .noqa import collect_suppressions, is_suppressed
from .registry import Module, Rule, all_rules

__all__ = ["collect_files", "lint_files", "lint_paths", "lint_source"]


def collect_files(paths: Iterable[str], config: CheckConfig) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            out.append(path)
    normalized = sorted({p.replace(os.sep, "/") for p in out})
    return [p for p in normalized if not config.file_excluded(p)]


def _select_rules(config: CheckConfig, select: Optional[Sequence[str]]) -> List[Rule]:
    chosen = all_rules()
    if select is not None:
        wanted = {s.upper() for s in select}
        chosen = [r for r in chosen if r.id in wanted]
    return [r.configured(severity=config.effective_severity(r)) for r in chosen]


def lint_source(
    text: str,
    path: str = "<snippet>",
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one source string (the test seam; also used per file)."""
    config = config if config is not None else CheckConfig()
    try:
        module = Module.from_source(text, path=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="RC000",
                severity="error",
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error so invariants can be checked",
            )
        ]
    suppressions = collect_suppressions(text)
    findings: List[Finding] = []
    for rule in _select_rules(config, select):
        if not config.rule_applies(rule, path):
            continue
        findings.extend(
            f for f in rule.check(module) if not is_suppressed(f, suppressions)
        )
    return sorted(findings)


def lint_files(
    files: Iterable[str],
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint explicit files; returns all findings sorted."""
    config = config if config is not None else CheckConfig()
    findings: List[Finding] = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        findings.extend(lint_source(text, path=path, config=config, select=select))
    return sorted(findings)


def lint_paths(
    paths: Optional[Sequence[str]] = None,
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint files/directories (defaulting to the config's ``paths``)."""
    config = config if config is not None else CheckConfig()
    roots = list(paths) if paths else list(config.paths)
    return lint_files(collect_files(roots, config), config=config, select=select)
