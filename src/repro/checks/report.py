"""Finding reports: human text and machine JSON.

The JSON document is the CI artifact::

    {
      "version": 1,
      "counts": {"total": 2, "error": 2, "warning": 0, "by_rule": {"RC001": 2}},
      "findings": [{"path": ..., "line": ..., "col": ..., "rule": ...,
                    "severity": ..., "message": ..., "hint": ...}, ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, Sequence

from .finding import SEVERITIES, Finding

__all__ = ["exit_code", "format_json", "format_text", "report_dict"]

#: Schema version of the JSON report.
JSON_VERSION = 1


def report_dict(findings: Sequence[Finding]) -> Dict[str, Any]:
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    counts: Dict[str, Any] = {"total": len(findings)}
    for severity in SEVERITIES:
        counts[severity] = sum(1 for f in findings if f.severity == severity)
    counts["by_rule"] = {rule: by_rule[rule] for rule in sorted(by_rule)}
    return {
        "version": JSON_VERSION,
        "counts": counts,
        "findings": [f.to_dict() for f in sorted(findings)],
    }


def format_json(findings: Sequence[Finding]) -> str:
    return json.dumps(report_dict(findings), indent=2, sort_keys=True)


def format_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro lint: no findings"
    lines = [str(f) for f in sorted(findings)]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"repro lint: {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def exit_code(findings: Sequence[Finding]) -> int:
    """Nonzero iff any error-severity finding survived suppression."""
    return 1 if any(f.severity == "error" for f in findings) else 0
