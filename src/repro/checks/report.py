"""Finding reports: human text and machine JSON.

The JSON document is the CI artifact::

    {
      "version": 2,
      "counts": {"total": 2, "error": 2, "warning": 0, "by_rule": {"RC001": 2}},
      "cache": {"files": 80, "hits": 78, "misses": 2, "hit_rate": 0.975},
      "findings": [{"path": ..., "line": ..., "col": ..., "rule": ...,
                    "severity": ..., "message": ..., "hint": ...}, ...]
    }

``cache`` appears only when the run carried driver stats (the CLI path);
version 2 added it.  CI asserts ``cache.hit_rate >= 0.9`` on a warm
run over an unchanged tree.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from .finding import SEVERITIES, Finding

__all__ = ["exit_code", "format_json", "format_text", "report_dict"]

#: Schema version of the JSON report (2: added the "cache" stats block).
JSON_VERSION = 2


def report_dict(
    findings: Sequence[Finding], stats: Optional[Any] = None
) -> Dict[str, Any]:
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    counts: Dict[str, Any] = {"total": len(findings)}
    for severity in SEVERITIES:
        counts[severity] = sum(1 for f in findings if f.severity == severity)
    counts["by_rule"] = {rule: by_rule[rule] for rule in sorted(by_rule)}
    doc: Dict[str, Any] = {
        "version": JSON_VERSION,
        "counts": counts,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    if stats is not None:
        doc["cache"] = {
            "files": stats.files,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "hit_rate": round(stats.hit_rate, 4),
        }
    return doc


def format_json(findings: Sequence[Finding], stats: Optional[Any] = None) -> str:
    return json.dumps(report_dict(findings, stats=stats), indent=2, sort_keys=True)


def format_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "repro lint: no findings"
    lines = [str(f) for f in sorted(findings)]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"repro lint: {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def exit_code(findings: Sequence[Finding]) -> int:
    """Nonzero iff any error-severity finding survived suppression."""
    return 1 if any(f.severity == "error" for f in findings) else 0
