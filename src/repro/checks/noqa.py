"""Per-line suppressions: ``# repro: noqa`` and ``# repro: noqa[RC001,RC003]``.

A bare ``# repro: noqa`` silences every rule on its line; the bracketed
form silences only the listed rule ids.  Suppressions are per-line — they
apply to findings whose ``line`` matches the comment's line — so a
suppression can never hide a violation elsewhere in the file.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet

from .finding import Finding

__all__ = ["ALL_RULES", "collect_suppressions", "is_suppressed"]

#: Sentinel meaning "every rule" for a bare ``# repro: noqa``.
ALL_RULES: FrozenSet[str] = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)


def collect_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = ALL_RULES
        else:
            ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
            if ids:
                suppressions[lineno] = ids
    return suppressions


def is_suppressed(finding: Finding, suppressions: Dict[int, FrozenSet[str]]) -> bool:
    """True when ``finding`` is silenced by a noqa comment on its line."""
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or finding.rule in rules
