"""One-call regeneration of the paper's tables and figures.

``render_experiments(ali, msrc, ...)`` computes every table (I-VI) and
figure (2-18) of the paper on a dataset pair and renders them as text —
the same rows/series the paper reports.  The benchmark harness under
``benchmarks/`` additionally asserts the qualitative shape; this module
is the plain reporting path used by ``repro experiments`` and notebooks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..stats.cdf import EmpiricalCDF
from ..stats.histogram import duration_group_fractions
from ..trace.dataset import TraceDataset
from .aggregate import (
    active_days_cdf,
    basic_statistics,
    request_size_cdf,
    volume_mean_size_cdf,
    write_read_ratio_cdf,
)
from .cache_analysis import dataset_miss_ratios
from .load_intensity import (
    active_period_seconds,
    active_volume_timeseries,
    average_intensity,
    burstiness_ratio,
    interarrival_percentile_groups,
    overall_intensity,
    peak_intensity,
)
from .report import (
    ascii_cdf,
    format_boxplot_rows,
    format_bytes,
    format_cdf,
    format_duration,
    format_table,
)
from .spatial import (
    dataset_mostly_traffic,
    randomness_ratio,
    topk_block_traffic_fraction,
    update_coverage,
)
from .temporal import (
    dataset_adjacent_access_times,
    dataset_update_intervals,
    update_intervals,
)

__all__ = ["ExperimentContext", "render_experiments", "EXPERIMENTS"]


class ExperimentContext:
    """A dataset pair plus the time parameters the analyses need.

    ``day_seconds`` scales the paper's windows (1-minute peak, 10-minute
    activity, per-day activeness); use 86400 for real traces.
    """

    def __init__(
        self,
        ali: TraceDataset,
        msrc: TraceDataset,
        day_seconds: float = 86400.0,
        n_days_ali: Optional[int] = None,
        n_days_msrc: Optional[int] = None,
    ) -> None:
        self.ali = ali
        self.msrc = msrc
        self.day_seconds = day_seconds
        self.n_days_ali = n_days_ali
        self.n_days_msrc = n_days_msrc

    @property
    def peak_interval(self) -> float:
        return self.day_seconds / 1440.0

    @property
    def activity_interval(self) -> float:
        return self.day_seconds / 144.0

    def pairs(self) -> List[Tuple[str, TraceDataset]]:
        return [(self.ali.name, self.ali), (self.msrc.name, self.msrc)]


def _table1(ctx: ExperimentContext) -> str:
    a = basic_statistics(ctx.ali, duration_days=ctx.n_days_ali)
    m = basic_statistics(ctx.msrc, duration_days=ctx.n_days_msrc)
    gib = 1024.0
    rows = [
        ["Number of volumes", a.n_volumes, m.n_volumes],
        ["Duration (days)", a.duration_days, m.duration_days],
        ["# of reads (M)", a.n_reads_millions, m.n_reads_millions],
        ["# of writes (M)", a.n_writes_millions, m.n_writes_millions],
        ["Read traffic (GiB)", a.read_traffic_tib * gib, m.read_traffic_tib * gib],
        ["Write traffic (GiB)", a.write_traffic_tib * gib, m.write_traffic_tib * gib],
        ["Update traffic (GiB)", a.update_traffic_tib * gib, m.update_traffic_tib * gib],
        ["Total WSS (GiB)", a.wss_total_tib * gib, m.wss_total_tib * gib],
        ["Read WSS (GiB)", a.wss_read_tib * gib, m.wss_read_tib * gib],
        ["Write WSS (GiB)", a.wss_write_tib * gib, m.wss_write_tib * gib],
        ["Update WSS (GiB)", a.wss_update_tib * gib, m.wss_update_tib * gib],
    ]
    return format_table(
        ["statistic", ctx.ali.name, ctx.msrc.name], rows, title="Table I: basic statistics"
    )


def _fig2(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        for op in ("read", "write"):
            lines.append(
                format_cdf(
                    request_size_cdf(ds, op), f"Fig2a {name} {op} sizes",
                    (25, 50, 75, 90, 95), format_bytes,
                )
            )
    for name, ds in ctx.pairs():
        for op in ("read", "write"):
            lines.append(
                format_cdf(
                    volume_mean_size_cdf(ds, op), f"Fig2b {name} mean {op} size",
                    (25, 50, 75, 90), format_bytes,
                )
            )
    return "\n".join(lines)


def _fig3(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        cdf = active_days_cdf(ds, day_seconds=ctx.day_seconds, origin=0.0)
        one_day = cdf(1.0) - cdf.fraction_below(1.0)
        lines.append(
            format_cdf(cdf, f"Fig3 {name} active days", (25, 50, 75, 100))
            + f"  [1-day volumes: {one_day:.1%}]"
        )
    return "\n".join(lines)


def _fig4(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        cdf = write_read_ratio_cdf(ds)
        lines.append(
            format_cdf(cdf, f"Fig4 {name} W:R ratios", (25, 50, 75, 90))
            + f"  [write-dominant: {cdf.fraction_above(1.0):.1%}, "
            f">100: {cdf.fraction_above(100.0):.1%}]"
        )
        lines.append(ascii_cdf(cdf, label=f"Fig4 {name} (log x)", logx=True, height=8))
    return "\n".join(lines)


def _fig5(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        avg = np.array([average_intensity(v) for v in ds.volumes() if len(v) > 1])
        avg = avg[np.isfinite(avg)]
        peak = np.array(
            [peak_intensity(v, ctx.peak_interval) for v in ds.volumes() if len(v) > 1]
        )
        lines.append(
            f"Fig5 {name}: median avg {np.median(avg):.2f} req/s, "
            f"frac<10 {np.mean(avg < 10):.1%}, frac>100 {np.mean(avg > 100):.1%}, "
            f"max peak {peak.max():.0f} req/s"
        )
    return "\n".join(lines)


def _fig6_table2(ctx: ExperimentContext) -> str:
    lines = []
    rows = []
    for name, ds in ctx.pairs():
        ratios = np.array(
            [burstiness_ratio(v, ctx.peak_interval) for v in ds.volumes() if len(v) > 1]
        )
        ratios = ratios[np.isfinite(ratios)]
        lines.append(
            f"Fig6 {name}: frac<10 {np.mean(ratios < 10):.1%}, "
            f"frac>100 {np.mean(ratios > 100):.1%}, "
            f"frac>1000 {np.mean(ratios > 1000):.2%}"
        )
        ov = overall_intensity(ds, ctx.peak_interval)
        rows.append([name, ov.peak_req_per_s, ov.average_req_per_s, ov.burstiness_ratio])
    lines.append(
        format_table(["trace", "peak (req/s)", "avg (req/s)", "burstiness"], rows,
                     title="Table II: overall intensities")
    )
    return "\n".join(lines)


def _fig7(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        groups = interarrival_percentile_groups(ds, (25, 50, 75, 90, 95))
        lines.append(
            format_boxplot_rows(
                {f"p{int(p)}": v for p, v in groups.items()},
                title=f"Fig7 {name}: per-volume inter-arrival percentiles",
                value_formatter=format_duration,
            )
        )
    return "\n".join(lines)


def _fig8(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        ts = active_volume_timeseries(ds, ctx.activity_interval)
        overlap = np.mean(ts.write_active / np.maximum(ts.active, 1))
        reduction = 1 - np.mean(ts.read_active / np.maximum(ts.active, 1))
        lines.append(
            f"Fig8 {name}: mean active {ts.active.mean():.1f}/{ds.n_volumes} volumes, "
            f"write-active/active {overlap:.1%}, read-only reduction {reduction:.1%}"
        )
    return "\n".join(lines)


def _fig9(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        t0, t1 = 0.0, ds.end_time
        span = max(t1 - t0, ctx.activity_interval)
        for op, label in ((None, "active"), ("read", "read-active"), ("write", "write-active")):
            fracs = np.array(
                [active_period_seconds(v, t0, t1, ctx.activity_interval, op) / span
                 for v in ds.volumes()]
            )
            lines.append(
                f"Fig9 {name} {label}: median {np.median(fracs):.1%}, "
                f">=95%: {np.mean(fracs >= 0.95):.1%} of volumes"
            )
    return "\n".join(lines)


def _fig10(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        ratios = np.array([randomness_ratio(v) for v in ds.non_empty_volumes()])
        ratios = ratios[np.isfinite(ratios)]
        lines.append(
            f"Fig10 {name}: median randomness {np.median(ratios):.1%}, "
            f"frac>50% {np.mean(ratios > 0.5):.1%}, max {ratios.max():.1%}"
        )
    return "\n".join(lines)


def _fig11(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        samples = {}
        for op in ("read", "write"):
            for frac in (0.01, 0.10):
                vals = np.array(
                    [topk_block_traffic_fraction(v, frac, op) for v in ds.non_empty_volumes()]
                )
                samples[f"{op} top-{int(frac * 100)}%"] = vals[np.isfinite(vals)]
        lines.append(
            format_boxplot_rows(samples, title=f"Fig11 {name}: traffic in hottest blocks")
        )
    return "\n".join(lines)


def _fig12_table3(ctx: ExperimentContext) -> str:
    a = dataset_mostly_traffic(ctx.ali)
    m = dataset_mostly_traffic(ctx.msrc)
    rows = [
        ["Reads to read-mostly blocks (%)", a.read_to_read_mostly * 100, m.read_to_read_mostly * 100],
        ["Writes to write-mostly blocks (%)", a.write_to_write_mostly * 100, m.write_to_write_mostly * 100],
    ]
    return format_table(["traffic", ctx.ali.name, ctx.msrc.name], rows, title="Table III")


def _fig13_table4(ctx: ExperimentContext) -> str:
    rows = []
    for name, ds in ctx.pairs():
        cov = np.array([update_coverage(v) for v in ds.non_empty_volumes()])
        cov = cov[np.isfinite(cov)]
        rows.append(
            [name, np.mean(cov) * 100, np.median(cov) * 100, np.percentile(cov, 90) * 100]
        )
    return format_table(
        ["trace", "mean (%)", "median (%)", "p90 (%)"], rows,
        title="Table IV: update coverage",
    )


def _fig14_15_table5(ctx: ExperimentContext) -> str:
    lines = []
    rows = []
    for name, ds in ctx.pairs():
        at = dataset_adjacent_access_times(ds)
        counts = at.counts()
        rows.append([name, counts["RAW"], counts["WAW"], counts["RAR"], counts["WAR"]])
        for kind in ("RAW", "WAW", "RAR", "WAR"):
            values = at.get(kind)
            if len(values) == 0:
                continue
            cdf = EmpiricalCDF(values)
            lines.append(
                f"Fig14/15 {name} {kind}: median {format_duration(cdf.median)}, "
                f"p25 {format_duration(cdf.percentile(25))}, "
                f"p90 {format_duration(cdf.percentile(90))}"
            )
    lines.append(format_table(["trace", "RAW", "WAW", "RAR", "WAR"], rows, title="Table V"))
    return "\n".join(lines)


def _fig16_17_table6(ctx: ExperimentContext) -> str:
    lines = []
    rows = []
    boundaries = [ctx.day_seconds * h / 24.0 for h in (5 / 60, 30 / 60, 240 / 60)]
    for name, ds in ctx.pairs():
        pooled = dataset_update_intervals(ds)
        if len(pooled) == 0:
            continue
        values = np.percentile(pooled, (25, 50, 75, 90, 95))
        rows.append([name] + [format_duration(v) for v in values])
        per_volume = [
            duration_group_fractions(ui, boundaries)
            for ui in (update_intervals(v) for v in ds.non_empty_volumes())
            if len(ui)
        ]
        fracs = np.array(per_volume)
        lines.append(
            f"Fig17 {name}: median group fractions "
            f"<5min {np.median(fracs[:, 0]):.1%}, 5-30min {np.median(fracs[:, 1]):.1%}, "
            f"30-240min {np.median(fracs[:, 2]):.1%}, >240min {np.median(fracs[:, 3]):.1%}"
        )
    lines.insert(
        0,
        format_table(
            ["trace", "p25", "p50", "p75", "p90", "p95"], rows,
            title="Table VI: update intervals",
        ),
    )
    return "\n".join(lines)


def _fig18(ctx: ExperimentContext) -> str:
    lines = []
    for name, ds in ctx.pairs():
        mr = dataset_miss_ratios(ds, (0.01, 0.10))
        lines.append(
            format_boxplot_rows(
                {
                    "read @1%": mr.read[0.01],
                    "read @10%": mr.read[0.10],
                    "write @1%": mr.write[0.01],
                    "write @10%": mr.write[0.10],
                },
                title=f"Fig18 {name}: LRU miss ratios (cache = 1%/10% of WSS)",
            )
        )
    return "\n".join(lines)


#: Ordered experiment registry: (id, renderer).
EXPERIMENTS = [
    ("Table I", _table1),
    ("Figure 2", _fig2),
    ("Figure 3", _fig3),
    ("Figure 4", _fig4),
    ("Figure 5 / Finding 1", _fig5),
    ("Figure 6 + Table II / Findings 2-3", _fig6_table2),
    ("Figure 7 / Finding 4", _fig7),
    ("Figure 8 / Findings 5-7", _fig8),
    ("Figure 9 / Findings 5-7", _fig9),
    ("Figure 10 / Finding 8", _fig10),
    ("Figure 11 / Finding 9", _fig11),
    ("Figure 12 + Table III / Finding 10", _fig12_table3),
    ("Figure 13 + Table IV / Finding 11", _fig13_table4),
    ("Figures 14-15 + Table V / Findings 12-13", _fig14_15_table5),
    ("Figures 16-17 + Table VI / Finding 14", _fig16_17_table6),
    ("Figure 18 / Finding 15", _fig18),
]


def render_experiments(
    ali: TraceDataset,
    msrc: TraceDataset,
    day_seconds: float = 86400.0,
    n_days_ali: Optional[int] = None,
    n_days_msrc: Optional[int] = None,
    only: Optional[List[str]] = None,
) -> str:
    """Render all (or selected) experiments as one text report.

    ``only`` filters by substring match on the experiment id (e.g.
    ``["Table I", "Figure 18"]``).
    """
    ctx = ExperimentContext(ali, msrc, day_seconds, n_days_ali, n_days_msrc)

    def matches(sel: str, exp_id: str) -> bool:
        # Substring match with a right word boundary, so "Table I" does
        # not select "Table II".
        low_id, low_sel = exp_id.lower(), sel.lower()
        start = low_id.find(low_sel)
        if start < 0:
            return False
        end = start + len(low_sel)
        return end >= len(low_id) or not low_id[end].isalnum()

    blocks = []
    for exp_id, renderer in EXPERIMENTS:
        if only and not any(matches(sel, exp_id) for sel in only):
            continue
        blocks.append(f"=== {exp_id} " + "=" * max(1, 60 - len(exp_id)))
        blocks.append(renderer(ctx))
        blocks.append("")
    return "\n".join(blocks)
