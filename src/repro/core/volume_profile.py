"""Per-volume characterization profiles.

A :class:`VolumeProfile` bundles every per-volume metric the paper uses,
so examples, the CLI, and downstream tooling can characterize a volume in
one call and serialize the result.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict

import numpy as np

from ..trace.dataset import VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE
from .cache_analysis import volume_miss_ratios
from .load_intensity import (
    average_intensity,
    burstiness_ratio,
    peak_intensity,
    write_read_ratio,
)
from .spatial import (
    WorkingSets,
    mostly_traffic,
    randomness_ratio,
    topk_block_traffic_fraction,
    update_coverage,
    working_sets,
)
from .temporal import adjacent_access_times, update_intervals

__all__ = ["VolumeProfile", "compute_profile"]


@dataclass(frozen=True)
class VolumeProfile:
    """All per-volume metrics from the paper's three analysis axes."""

    volume_id: str
    n_requests: int
    n_reads: int
    n_writes: int
    read_bytes: int
    write_bytes: int
    duration_seconds: float
    # Load intensity.
    average_intensity: float
    peak_intensity: float
    burstiness_ratio: float
    write_read_ratio: float
    # Spatial patterns.
    randomness_ratio: float
    working_sets: WorkingSets
    update_coverage: float
    top1_read_traffic: float
    top10_read_traffic: float
    top1_write_traffic: float
    top10_write_traffic: float
    read_to_read_mostly: float
    write_to_write_mostly: float
    # Temporal patterns.
    median_raw_time: float
    median_waw_time: float
    median_rar_time: float
    median_war_time: float
    median_update_interval: float
    # Caching (LRU at 1% and 10% of WSS).
    read_miss_ratio_1pct: float
    write_miss_ratio_1pct: float
    read_miss_ratio_10pct: float
    write_miss_ratio_10pct: float

    @property
    def is_write_dominant(self) -> bool:
        """Write-to-read ratio exceeds 1 (paper Section III-C)."""
        return self.write_read_ratio > 1

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-serializable dict (NaN preserved as float)."""
        d = asdict(self)
        d["working_sets"] = asdict(self.working_sets)
        return d


def _median_or_nan(values: np.ndarray) -> float:
    return float(np.median(values)) if len(values) else float("nan")


def compute_profile(
    trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE
) -> VolumeProfile:
    """Compute the full characterization profile of one volume."""
    at = adjacent_access_times(trace, block_size)
    intervals = update_intervals(trace, block_size)
    mostly = mostly_traffic(trace, block_size=block_size)
    miss = {
        (r.cache_fraction): r
        for r in volume_miss_ratios(trace, (0.01, 0.10), block_size)
    }

    def miss_ratio(frac: float, op: str) -> float:
        res = miss.get(frac)
        if res is None:
            return float("nan")
        return res.read_miss_ratio if op == "read" else res.write_miss_ratio

    return VolumeProfile(
        volume_id=trace.volume_id,
        n_requests=len(trace),
        n_reads=trace.n_reads,
        n_writes=trace.n_writes,
        read_bytes=trace.read_bytes,
        write_bytes=trace.write_bytes,
        duration_seconds=trace.duration if len(trace) else 0.0,
        average_intensity=average_intensity(trace),
        peak_intensity=peak_intensity(trace),
        burstiness_ratio=burstiness_ratio(trace),
        write_read_ratio=write_read_ratio(trace),
        randomness_ratio=randomness_ratio(trace),
        working_sets=working_sets(trace, block_size),
        update_coverage=update_coverage(trace, block_size),
        top1_read_traffic=topk_block_traffic_fraction(trace, 0.01, "read", block_size),
        top10_read_traffic=topk_block_traffic_fraction(trace, 0.10, "read", block_size),
        top1_write_traffic=topk_block_traffic_fraction(trace, 0.01, "write", block_size),
        top10_write_traffic=topk_block_traffic_fraction(trace, 0.10, "write", block_size),
        read_to_read_mostly=mostly.read_to_read_mostly,
        write_to_write_mostly=mostly.write_to_write_mostly,
        median_raw_time=_median_or_nan(at.raw),
        median_waw_time=_median_or_nan(at.waw),
        median_rar_time=_median_or_nan(at.rar),
        median_war_time=_median_or_nan(at.war),
        median_update_interval=_median_or_nan(intervals),
        read_miss_ratio_1pct=miss_ratio(0.01, "read"),
        write_miss_ratio_1pct=miss_ratio(0.01, "write"),
        read_miss_ratio_10pct=miss_ratio(0.10, "read"),
        write_miss_ratio_10pct=miss_ratio(0.10, "write"),
    )
