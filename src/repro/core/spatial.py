"""Spatial-pattern metrics (paper Section IV-B, Findings 8-11).

Covers request randomness (minimum offset distance over a sliding window of
recent requests), traffic aggregation in the hottest blocks,
read-mostly/write-mostly block classification, and update coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.blocks import block_events, block_traffic
from ..trace.dataset import TraceDataset, VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE

__all__ = [
    "DEFAULT_RANDOMNESS_WINDOW",
    "DEFAULT_RANDOMNESS_THRESHOLD",
    "random_request_mask",
    "randomness_ratio",
    "topk_block_traffic_fraction",
    "MostlyTraffic",
    "mostly_traffic",
    "dataset_mostly_traffic",
    "WorkingSets",
    "working_sets",
    "update_coverage",
]

#: Number of preceding requests compared against (paper / DiskAccel: 32).
DEFAULT_RANDOMNESS_WINDOW = 32

#: Offset-distance threshold beyond which a request is random (128 KiB).
DEFAULT_RANDOMNESS_THRESHOLD = 128 * 1024

#: Fraction of a block's traffic that must be reads (writes) for the block
#: to be read-mostly (write-mostly); the paper uses 95%.
MOSTLY_THRESHOLD = 0.95


def random_request_mask(
    trace: VolumeTrace,
    window: int = DEFAULT_RANDOMNESS_WINDOW,
    threshold: int = DEFAULT_RANDOMNESS_THRESHOLD,
) -> np.ndarray:
    """Boolean mask marking the random requests of a volume.

    A request is *random* when the minimum absolute distance between its
    offset and the offsets of the previous ``window`` requests exceeds
    ``threshold`` bytes.  The first request has no predecessors and is
    counted as random (it cannot be near any recent request).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    offsets = trace.offsets.astype(np.float64)
    n = len(offsets)
    if n == 0:
        return np.array([], dtype=bool)
    min_dist = np.full(n, np.inf)
    # One vectorized pass per lag: distance to the request `lag` positions
    # earlier; the running minimum over lags 1..window gives the metric.
    for lag in range(1, min(window, n - 1) + 1):
        d = np.abs(offsets[lag:] - offsets[:-lag])
        np.minimum(min_dist[lag:], d, out=min_dist[lag:])
    return min_dist > threshold


def randomness_ratio(
    trace: VolumeTrace,
    window: int = DEFAULT_RANDOMNESS_WINDOW,
    threshold: int = DEFAULT_RANDOMNESS_THRESHOLD,
) -> float:
    """Fraction of a volume's requests classified as random (Finding 8)."""
    if len(trace) == 0:
        return float("nan")
    return float(random_request_mask(trace, window, threshold).mean())


def topk_block_traffic_fraction(
    trace: VolumeTrace,
    top_fraction: float,
    op: str,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> float:
    """Fraction of read (or write) traffic landing in the hottest blocks.

    ``top_fraction`` selects the top-N% of the op's distinct blocks ranked
    by that op's per-block traffic (Finding 9: top-1% and top-10%).  At
    least one block is always selected.  NaN when the volume has no traffic
    of the requested op.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    if op not in ("read", "write"):
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    blocks, read_bytes, write_bytes = block_traffic(trace, block_size)
    traffic = read_bytes if op == "read" else write_bytes
    traffic = traffic[traffic > 0]
    if len(traffic) == 0:
        return float("nan")
    total = traffic.sum()
    k = max(1, int(len(traffic) * top_fraction))
    top = np.sort(traffic)[-k:]
    return float(top.sum() / total)


@dataclass(frozen=True)
class MostlyTraffic:
    """Traffic going to read-mostly / write-mostly blocks (Finding 10)."""

    read_to_read_mostly: float
    write_to_write_mostly: float


def _mostly_fractions(
    read_bytes: np.ndarray, write_bytes: np.ndarray, threshold: float
) -> MostlyTraffic:
    total = read_bytes + write_bytes
    touched = total > 0
    read_bytes = read_bytes[touched]
    write_bytes = write_bytes[touched]
    total = total[touched]
    read_mostly = read_bytes >= threshold * total
    write_mostly = write_bytes >= threshold * total
    total_read = read_bytes.sum()
    total_write = write_bytes.sum()
    r = float(read_bytes[read_mostly].sum() / total_read) if total_read > 0 else float("nan")
    w = float(write_bytes[write_mostly].sum() / total_write) if total_write > 0 else float("nan")
    return MostlyTraffic(read_to_read_mostly=r, write_to_write_mostly=w)


def mostly_traffic(
    trace: VolumeTrace,
    threshold: float = MOSTLY_THRESHOLD,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> MostlyTraffic:
    """Per-volume fractions of read traffic to read-mostly blocks and write
    traffic to write-mostly blocks."""
    _, read_bytes, write_bytes = block_traffic(trace, block_size)
    return _mostly_fractions(read_bytes, write_bytes, threshold)


def dataset_mostly_traffic(
    dataset: TraceDataset,
    threshold: float = MOSTLY_THRESHOLD,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> MostlyTraffic:
    """Fleet-level Finding 10 numbers (paper Table III).

    Block classification happens per volume (block ids are per-volume
    address spaces), then traffic is summed across the fleet.
    """
    read_to_rm = 0.0
    write_to_wm = 0.0
    total_read = 0.0
    total_write = 0.0
    for trace in dataset.volumes():
        _, read_bytes, write_bytes = block_traffic(trace, block_size)
        if len(read_bytes) == 0:
            continue
        total = read_bytes + write_bytes
        touched = total > 0
        rb, wb, tot = read_bytes[touched], write_bytes[touched], total[touched]
        read_mostly = rb >= threshold * tot
        write_mostly = wb >= threshold * tot
        read_to_rm += float(rb[read_mostly].sum())
        write_to_wm += float(wb[write_mostly].sum())
        total_read += float(rb.sum())
        total_write += float(wb.sum())
    return MostlyTraffic(
        read_to_read_mostly=read_to_rm / total_read if total_read > 0 else float("nan"),
        write_to_write_mostly=write_to_wm / total_write if total_write > 0 else float("nan"),
    )


@dataclass(frozen=True)
class WorkingSets:
    """Working set sizes in bytes (Table I rows).

    ``update`` counts blocks written more than once; ``total`` counts all
    blocks touched by any request.
    """

    total: int
    read: int
    write: int
    update: int


def working_sets(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> WorkingSets:
    """Total/read/write/update working set sizes of one volume."""
    ev = block_events(trace, block_size)
    if len(ev) == 0:
        return WorkingSets(0, 0, 0, 0)
    total = len(np.unique(ev.block_id))
    read = len(np.unique(ev.block_id[~ev.is_write]))
    write_blocks = ev.block_id[ev.is_write]
    if len(write_blocks):
        uniq, counts = np.unique(write_blocks, return_counts=True)
        write = len(uniq)
        update = int(np.count_nonzero(counts > 1))
    else:
        write = update = 0
    return WorkingSets(
        total=total * block_size,
        read=read * block_size,
        write=write * block_size,
        update=update * block_size,
    )


def update_coverage(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> float:
    """Update WSS / total WSS of the volume (Finding 11); NaN when empty."""
    ws = working_sets(trace, block_size)
    if ws.total == 0:
        return float("nan")
    return ws.update / ws.total
