"""Temporal-pattern metrics (paper Section IV-C, Findings 12-14).

Covers the four adjacent-access transition types to the same block —
read-after-write (RAW), write-after-write (WAW), read-after-read (RAR),
write-after-read (WAR) — their elapsed-time distributions and counts, plus
block update intervals (time between consecutive writes to a block, reads
permitted in between).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..trace.blocks import block_events
from ..trace.dataset import TraceDataset, VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE

__all__ = [
    "TRANSITION_TYPES",
    "AdjacentAccessTimes",
    "adjacent_access_times",
    "dataset_adjacent_access_times",
    "adjacent_access_counts",
    "update_intervals",
    "dataset_update_intervals",
]

#: Transition names keyed by (previous op was write, current op is write).
TRANSITION_TYPES = {
    (True, False): "RAW",
    (True, True): "WAW",
    (False, False): "RAR",
    (False, True): "WAR",
}


@dataclass(frozen=True)
class AdjacentAccessTimes:
    """Elapsed times (seconds) of same-block adjacent accesses, by type."""

    raw: np.ndarray
    waw: np.ndarray
    rar: np.ndarray
    war: np.ndarray

    def counts(self) -> Dict[str, int]:
        return {
            "RAW": len(self.raw),
            "WAW": len(self.waw),
            "RAR": len(self.rar),
            "WAR": len(self.war),
        }

    def get(self, name: str) -> np.ndarray:
        try:
            return getattr(self, name.lower())
        except AttributeError:
            raise KeyError(f"unknown transition type: {name!r}") from None


def _sorted_block_stream(trace: VolumeTrace, block_size: int):
    """Block events sorted by (block, time), preserving request order for
    simultaneous accesses to a block."""
    ev = block_events(trace, block_size)
    if len(ev) == 0:
        return None
    order = np.lexsort((ev.req_index, ev.timestamps, ev.block_id))
    return ev.block_id[order], ev.timestamps[order], ev.is_write[order]


def adjacent_access_times(
    trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE
) -> AdjacentAccessTimes:
    """Classify every same-block adjacent access pair of the volume.

    Each consecutive pair of accesses to the same block contributes one
    elapsed time to exactly one of the four transition types, keyed by the
    (previous, current) op pair.
    """
    stream = _sorted_block_stream(trace, block_size)
    empty = np.array([], dtype=np.float64)
    if stream is None:
        return AdjacentAccessTimes(empty, empty.copy(), empty.copy(), empty.copy())
    block_id, ts, is_write = stream
    same_block = block_id[1:] == block_id[:-1]
    dt = (ts[1:] - ts[:-1])[same_block]
    prev_w = is_write[:-1][same_block]
    cur_w = is_write[1:][same_block]
    return AdjacentAccessTimes(
        raw=dt[prev_w & ~cur_w],
        waw=dt[prev_w & cur_w],
        rar=dt[~prev_w & ~cur_w],
        war=dt[~prev_w & cur_w],
    )


def dataset_adjacent_access_times(
    dataset: TraceDataset, block_size: int = DEFAULT_BLOCK_SIZE
) -> AdjacentAccessTimes:
    """Fleet-level pooled transition times (paper Figures 14-15, Table V)."""
    parts: Dict[str, List[np.ndarray]] = {"raw": [], "waw": [], "rar": [], "war": []}
    for trace in dataset.volumes():
        at = adjacent_access_times(trace, block_size)
        parts["raw"].append(at.raw)
        parts["waw"].append(at.waw)
        parts["rar"].append(at.rar)
        parts["war"].append(at.war)
    empty = np.array([], dtype=np.float64)

    def cat(key: str) -> np.ndarray:
        arrays = [a for a in parts[key] if len(a)]
        return np.concatenate(arrays) if arrays else empty.copy()

    return AdjacentAccessTimes(raw=cat("raw"), waw=cat("waw"), rar=cat("rar"), war=cat("war"))


def adjacent_access_counts(
    dataset: TraceDataset, block_size: int = DEFAULT_BLOCK_SIZE
) -> Dict[str, int]:
    """Fleet-level RAW/WAW/RAR/WAR counts (paper Table V)."""
    totals = {"RAW": 0, "WAW": 0, "RAR": 0, "WAR": 0}
    for trace in dataset.volumes():
        for name, count in adjacent_access_times(trace, block_size).counts().items():
            totals[name] += count
    return totals


def update_intervals(trace: VolumeTrace, block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Elapsed times between consecutive *writes* to the same block.

    Unlike WAW times, reads may occur between the two writes; a block
    written M times contributes M-1 intervals (Finding 14).
    """
    stream = _sorted_block_stream(trace.writes(), block_size)
    if stream is None:
        return np.array([], dtype=np.float64)
    block_id, ts, _ = stream
    same_block = block_id[1:] == block_id[:-1]
    return (ts[1:] - ts[:-1])[same_block]


def dataset_update_intervals(
    dataset: TraceDataset, block_size: int = DEFAULT_BLOCK_SIZE
) -> np.ndarray:
    """Pooled update intervals across the fleet (paper Table VI)."""
    arrays = [update_intervals(v, block_size) for v in dataset.volumes()]
    arrays = [a for a in arrays if len(a)]
    if not arrays:
        return np.array([], dtype=np.float64)
    return np.concatenate(arrays)
