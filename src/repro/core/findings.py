"""The paper's 15 findings as programmatic checks.

Each finding compares the "AliCloud-side" dataset against the "MSRC-side"
dataset and evaluates the paper's *qualitative* claim (direction of a
comparison, existence of a pattern) — not the absolute numbers, which
depend on the production environment.  ``evaluate_findings`` returns one
:class:`Finding` per paper finding with the measured evidence attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

import numpy as np

from ..trace.dataset import TraceDataset
from .cache_analysis import dataset_miss_ratios
from .load_intensity import (
    active_period_seconds,
    active_volume_timeseries,
    average_intensity,
    burstiness_ratio,
    interarrival_percentile_groups,
    overall_intensity,
)
from .spatial import (
    dataset_mostly_traffic,
    randomness_ratio,
    topk_block_traffic_fraction,
    update_coverage,
)
from .temporal import adjacent_access_counts, dataset_adjacent_access_times

__all__ = ["Finding", "evaluate_findings", "FINDING_TITLES"]

FINDING_TITLES = {
    1: "Both traces have similar load intensities of volumes",
    2: "High burstiness in a non-negligible fraction of volumes, low overall",
    3: "AliCloud has more diverse burstiness across volumes than MSRC",
    4: "High short-term burstiness in inter-arrival times",
    5: "Most volumes active throughout; AliCloud more active",
    6: "Writes dominate activeness",
    7: "Removing writes drastically decreases activeness",
    8: "Random I/Os common; AliCloud more random than MSRC",
    9: "Reads/writes aggregate in small working sets; writes more aggregated",
    10: "Reads/writes aggregate in read-mostly/write-mostly blocks",
    11: "AliCloud has higher and more varied update coverage",
    12: "Large RAW time, small WAW time; AliCloud WAW count >> RAW count",
    13: "WAR time >> RAR time; RAR and WAR counts comparable",
    14: "Written blocks have varying update intervals",
    15: "Low miss ratios possible at small caches; AliCloud gains more from 1%->10%",
}


@dataclass
class Finding:
    """Result of checking one paper finding on a dataset pair."""

    id: int
    title: str
    holds: bool
    evidence: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "HOLDS" if self.holds else "DIFFERS"
        return f"Finding {self.id:2d} [{status}]: {self.title}"


def _finite(values: List[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    return arr[np.isfinite(arr)]


def _volume_metric(dataset: TraceDataset, fn: Callable) -> np.ndarray:
    return _finite([fn(v) for v in dataset.volumes() if len(v)])


def evaluate_findings(
    ali: TraceDataset,
    msrc: TraceDataset,
    block_size: int = 4096,
    peak_interval: float = 60.0,
    activity_interval: float = 600.0,
) -> List[Finding]:
    """Evaluate all 15 findings on an (AliCloud-side, MSRC-side) pair.

    ``peak_interval`` and ``activity_interval`` are the paper's 1-minute
    and 10-minute windows; when evaluating time-compressed synthetic
    fleets pass ``scale.peak_interval`` / ``scale.activity_interval`` so
    the windows compress with the trace.
    """
    findings: List[Finding] = []

    # --- Load intensity -----------------------------------------------------
    ali_avg = _volume_metric(ali, average_intensity)
    msrc_avg = _volume_metric(msrc, average_intensity)

    # Finding 1: similar per-volume intensity distributions — medians within
    # one order of magnitude and both dominated by <100 req/s volumes.
    med_a, med_m = float(np.median(ali_avg)), float(np.median(msrc_avg))
    f1 = (
        0.1 <= med_a / med_m <= 10
        and float(np.mean(ali_avg < 100)) > 0.9
        and float(np.mean(msrc_avg < 100)) > 0.9
    )
    findings.append(
        Finding(1, FINDING_TITLES[1], f1, {"median_avg_intensity": (med_a, med_m)})
    )

    # Finding 2: >=10% of volumes with burstiness > 100 in each trace, but
    # overall (aggregated) burstiness far below the bursty volumes' level.
    ali_burst = _volume_metric(ali, lambda v: burstiness_ratio(v, peak_interval))
    msrc_burst = _volume_metric(msrc, lambda v: burstiness_ratio(v, peak_interval))
    ov_a = overall_intensity(ali, peak_interval)
    ov_m = overall_intensity(msrc, peak_interval)
    frac_bursty_a = float(np.mean(ali_burst > 100))
    frac_bursty_m = float(np.mean(msrc_burst > 100))
    f2 = (
        frac_bursty_a > 0.05
        and frac_bursty_m > 0.05
        and ov_a.burstiness_ratio < 50
        and ov_m.burstiness_ratio < 50
    )
    findings.append(
        Finding(
            2,
            FINDING_TITLES[2],
            f2,
            {
                "frac_burstiness_gt_100": (frac_bursty_a, frac_bursty_m),
                "overall_burstiness": (ov_a.burstiness_ratio, ov_m.burstiness_ratio),
            },
        )
    )

    # Finding 3: AliCloud spans a wider burstiness range: more volumes at
    # both the low (<10) and the high (>1000) extremes.
    lo_a, lo_m = float(np.mean(ali_burst < 10)), float(np.mean(msrc_burst < 10))
    hi_a, hi_m = float(np.mean(ali_burst > 1000)), float(np.mean(msrc_burst > 1000))
    f3 = lo_a > lo_m and hi_a >= hi_m
    findings.append(
        Finding(3, FINDING_TITLES[3], f3, {"frac_lt_10": (lo_a, lo_m), "frac_gt_1000": (hi_a, hi_m)})
    )

    # Finding 4: medians of the 25/50/75th per-volume inter-arrival
    # percentiles are sub-second (high short-term burstiness) in both.
    ia_a = interarrival_percentile_groups(ali, (25, 50, 75))
    ia_m = interarrival_percentile_groups(msrc, (25, 50, 75))
    med_ia_a = {p: float(np.median(v)) for p, v in ia_a.items() if len(v)}
    med_ia_m = {p: float(np.median(v)) for p, v in ia_m.items() if len(v)}
    f4 = all(v < 2.0 for v in med_ia_a.values()) and all(v < 2.0 for v in med_ia_m.values())
    findings.append(
        Finding(4, FINDING_TITLES[4], f4, {"median_percentiles_ali": med_ia_a, "median_percentiles_msrc": med_ia_m})
    )

    # Findings 5-7 share the activity time series.
    interval = activity_interval
    ts_a = active_volume_timeseries(ali, interval)
    ts_m = active_volume_timeseries(msrc, interval)

    def active_fracs(dataset: TraceDataset, op=None) -> np.ndarray:
        t0, t1 = dataset.start_time, dataset.end_time
        span = max(t1 - t0, interval)
        return np.array(
            [
                active_period_seconds(v, t0, t1, interval, op) / span
                for v in dataset.volumes()
            ]
        )

    act_a, act_m = active_fracs(ali), active_fracs(msrc)
    # Finding 5: majority of volumes active >=95% of the trace period in
    # both, with AliCloud at least as active.
    frac95_a = float(np.mean(act_a >= 0.95))
    frac95_m = float(np.mean(act_m >= 0.95))
    f5 = frac95_a > 0.5 and frac95_m > 0.4 and frac95_a >= frac95_m
    findings.append(
        Finding(5, FINDING_TITLES[5], f5, {"frac_active_95pct": (frac95_a, frac95_m)})
    )

    # Finding 6: the write-active volume count tracks the active count.
    def overlap(ts) -> float:
        denom = np.maximum(ts.active, 1)
        return float(np.mean(ts.write_active / denom))

    ov6_a, ov6_m = overlap(ts_a), overlap(ts_m)
    f6 = ov6_a > 0.9 and ov6_m > 0.8
    findings.append(
        Finding(6, FINDING_TITLES[6], f6, {"write_active_over_active": (ov6_a, ov6_m)})
    )

    # Finding 7: dropping writes cuts the active-volume count substantially.
    def read_drop(ts) -> float:
        denom = np.maximum(ts.active, 1)
        return float(np.mean(1.0 - ts.read_active / denom))

    drop_a, drop_m = read_drop(ts_a), read_drop(ts_m)
    f7 = drop_a > 0.2 and drop_m > 0.1 and drop_a >= drop_m
    findings.append(
        Finding(7, FINDING_TITLES[7], f7, {"mean_active_reduction": (drop_a, drop_m)})
    )

    # --- Spatial patterns ---------------------------------------------------
    rnd_a = _volume_metric(ali, randomness_ratio)
    rnd_m = _volume_metric(msrc, randomness_ratio)
    f8 = float(np.median(rnd_a)) > float(np.median(rnd_m)) and float(np.mean(rnd_a > 0.5)) > 0.1
    findings.append(
        Finding(
            8,
            FINDING_TITLES[8],
            f8,
            {"median_randomness": (float(np.median(rnd_a)), float(np.median(rnd_m)))},
        )
    )

    # Finding 9: top-10% blocks absorb far more than 10% of traffic for the
    # median volume, and write aggregation beats read aggregation.
    def top10(dataset: TraceDataset, op: str) -> np.ndarray:
        return _finite(
            [topk_block_traffic_fraction(v, 0.10, op, block_size) for v in dataset.volumes() if len(v)]
        )

    r10_a, w10_a = top10(ali, "read"), top10(ali, "write")
    r10_m, w10_m = top10(msrc, "read"), top10(msrc, "write")
    f9 = (
        float(np.median(w10_a)) > 0.15
        and float(np.median(w10_m)) > 0.15
        and float(np.median(w10_a)) > float(np.median(r10_a))
    )
    findings.append(
        Finding(
            9,
            FINDING_TITLES[9],
            f9,
            {
                "median_top10_read": (float(np.median(r10_a)), float(np.median(r10_m))),
                "median_top10_write": (float(np.median(w10_a)), float(np.median(w10_m))),
            },
        )
    )

    # Finding 10: AliCloud read and write traffic mostly goes to read-mostly
    # and write-mostly blocks; MSRC write aggregation is weak.
    m_a = dataset_mostly_traffic(ali, block_size=block_size)
    m_m = dataset_mostly_traffic(msrc, block_size=block_size)
    f10 = (
        m_a.read_to_read_mostly > 0.5
        and m_a.write_to_write_mostly > 0.5
        and m_m.read_to_read_mostly > 0.5
        and m_a.write_to_write_mostly > m_m.write_to_write_mostly
    )
    findings.append(
        Finding(
            10,
            FINDING_TITLES[10],
            f10,
            {
                "ali": (m_a.read_to_read_mostly, m_a.write_to_write_mostly),
                "msrc": (m_m.read_to_read_mostly, m_m.write_to_write_mostly),
            },
        )
    )

    # Finding 11: AliCloud update coverage higher (median) and diverse.
    uc_a = _volume_metric(ali, lambda v: update_coverage(v, block_size))
    uc_m = _volume_metric(msrc, lambda v: update_coverage(v, block_size))
    f11 = float(np.median(uc_a)) > float(np.median(uc_m)) and float(np.std(uc_a)) > 0.1
    findings.append(
        Finding(
            11,
            FINDING_TITLES[11],
            f11,
            {"median_update_coverage": (float(np.median(uc_a)), float(np.median(uc_m)))},
        )
    )

    # --- Temporal patterns ----------------------------------------------------
    at_a = dataset_adjacent_access_times(ali, block_size)
    at_m = dataset_adjacent_access_times(msrc, block_size)
    counts_a = adjacent_access_counts(ali, block_size)
    counts_m = adjacent_access_counts(msrc, block_size)

    def med(arr: np.ndarray) -> float:
        return float(np.median(arr)) if len(arr) else float("nan")

    # Finding 12: RAW time >> WAW time in both; in AliCloud the WAW count
    # is several times the RAW count.
    f12 = (
        med(at_a.raw) > med(at_a.waw)
        and med(at_m.raw) > med(at_m.waw)
        and counts_a["WAW"] > 2 * counts_a["RAW"]
    )
    findings.append(
        Finding(
            12,
            FINDING_TITLES[12],
            f12,
            {
                "median_raw_s": (med(at_a.raw), med(at_m.raw)),
                "median_waw_s": (med(at_a.waw), med(at_m.waw)),
                "counts_ali": {k: counts_a[k] for k in ("RAW", "WAW")},
            },
        )
    )

    # Finding 13: WAR time >> RAR time in both; RAR count within ~6x of
    # WAR count (comparable in the paper: 2.5x and 4.2x).
    def count_ratio(counts) -> float:
        return counts["RAR"] / counts["WAR"] if counts["WAR"] else float("inf")

    f13 = (
        med(at_a.war) > med(at_a.rar)
        and med(at_m.war) > med(at_m.rar)
        and 0.3 <= count_ratio(counts_a) <= 25
    )
    findings.append(
        Finding(
            13,
            FINDING_TITLES[13],
            f13,
            {
                "median_rar_s": (med(at_a.rar), med(at_m.rar)),
                "median_war_s": (med(at_a.war), med(at_m.war)),
                "rar_war_ratio": (count_ratio(counts_a), count_ratio(counts_m)),
            },
        )
    )

    # Finding 14: update intervals span orders of magnitude within each
    # trace (p95/p25 huge) — "varying update intervals".
    from .temporal import dataset_update_intervals

    ui_a = dataset_update_intervals(ali, block_size)
    ui_m = dataset_update_intervals(msrc, block_size)

    def spread(arr: np.ndarray) -> float:
        if len(arr) < 10:
            return float("nan")
        p25, p95 = np.percentile(arr, [25, 95])
        return float(p95 / max(p25, 1e-9))

    f14 = spread(ui_a) > 30 and spread(ui_m) > 30
    findings.append(
        Finding(14, FINDING_TITLES[14], f14, {"p95_over_p25": (spread(ui_a), spread(ui_m))})
    )

    # Finding 15: some volumes already effective at a 1% cache, and the
    # AliCloud-side 25th-percentile read miss ratio drops more from 1%->10%.
    mr_a = dataset_miss_ratios(ali, (0.01, 0.10), block_size)
    mr_m = dataset_miss_ratios(msrc, (0.01, 0.10), block_size)

    def q25(arr: np.ndarray) -> float:
        return float(np.percentile(arr, 25)) if len(arr) else float("nan")

    red_a = q25(mr_a.read[0.01]) - q25(mr_a.read[0.10])
    red_m = q25(mr_m.read[0.01]) - q25(mr_m.read[0.10])
    low_at_1pct = float(np.mean(mr_a.read[0.01] < 0.5)) if len(mr_a.read[0.01]) else 0.0
    f15 = red_a > red_m and low_at_1pct > 0.0
    findings.append(
        Finding(
            15,
            FINDING_TITLES[15],
            f15,
            {
                "q25_read_reduction": (red_a, red_m),
                "frac_volumes_low_miss_at_1pct": low_at_1pct,
            },
        )
    )

    return findings
