"""Single-pass, bounded-memory volume profiling.

The released AliCloud traces hold ~20 billion requests; columnar
materialization (:class:`~repro.trace.dataset.VolumeTrace`) is the right
tool up to tens of millions of rows, but fleet-scale production analysis
needs a one-pass pipeline.  :class:`StreamingVolumeProfiler` folds an
:class:`~repro.trace.record.IORequest` stream into a fixed-size state:

* exact counters (requests, reads/writes, traffic bytes, time span),
* reservoir samples for request sizes and inter-arrival times
  (quantile estimates),
* HyperLogLog sketches for total/read/write working-set sizes.

:func:`stream_profile_requests` profiles a whole multi-volume request
stream (e.g. straight from :func:`~repro.trace.reader.iter_alicloud_requests`)
keeping one profiler per volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from ..stats.hll import HyperLogLog
from ..stats.streaming import ReservoirSampler
from ..trace.record import DEFAULT_BLOCK_SIZE, IORequest

__all__ = ["StreamingVolumeProfile", "StreamingVolumeProfiler", "stream_profile_requests"]


@dataclass(frozen=True)
class StreamingVolumeProfile:
    """Bounded-memory profile of one volume (estimates marked ~)."""

    volume_id: str
    n_requests: int
    n_reads: int
    n_writes: int
    read_bytes: int
    write_bytes: int
    start_time: float
    end_time: float
    #: ~ distinct blocks touched (HLL estimate), in bytes
    wss_total_bytes: float
    wss_read_bytes: float
    wss_write_bytes: float
    #: ~ request-size percentiles from a reservoir: {p: value}
    size_percentiles: Dict[float, float]
    #: ~ inter-arrival percentiles from a reservoir: {p: seconds}
    interarrival_percentiles: Dict[float, float]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def average_intensity(self) -> float:
        if self.n_requests < 2 or self.duration <= 0:
            return 0.0
        return self.n_requests / self.duration

    @property
    def write_read_ratio(self) -> float:
        if self.n_reads == 0:
            return float("inf") if self.n_writes else float("nan")
        return self.n_writes / self.n_reads

    @property
    def read_wss_fraction(self) -> float:
        if self.wss_total_bytes <= 0:
            return float("nan")
        return self.wss_read_bytes / self.wss_total_bytes


class StreamingVolumeProfiler:
    """Accumulates one volume's requests in O(1) memory."""

    def __init__(
        self,
        volume_id: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
        reservoir_size: int = 4096,
        hll_precision: int = 14,
        seed: int = 0,
    ) -> None:
        self.volume_id = volume_id
        self.block_size = block_size
        self.n_reads = 0
        self.n_writes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        rng = np.random.default_rng(seed)
        self._sizes = ReservoirSampler(reservoir_size, rng)
        self._gaps = ReservoirSampler(reservoir_size, rng)
        self._wss_total = HyperLogLog(hll_precision, seed=seed)
        self._wss_read = HyperLogLog(hll_precision, seed=seed)
        self._wss_write = HyperLogLog(hll_precision, seed=seed)

    def add(self, request: IORequest) -> None:
        """Fold one request (requests must arrive in time order)."""
        if request.volume != self.volume_id:
            raise ValueError(
                f"request for {request.volume!r} fed to profiler {self.volume_id!r}"
            )
        if self._last_ts is not None:
            gap = request.timestamp - self._last_ts
            if gap < 0:
                raise ValueError("requests must be fed in timestamp order")
            self._gaps.add(gap)
        else:
            self._first_ts = request.timestamp
        self._last_ts = request.timestamp
        self._sizes.add(float(request.size))
        first = request.offset // self.block_size
        last = (request.offset + request.size - 1) // self.block_size
        blocks = np.arange(first, last + 1, dtype=np.int64)
        self._wss_total.add_many(blocks)
        if request.is_write:
            self.n_writes += 1
            self.write_bytes += request.size
            self._wss_write.add_many(blocks)
        else:
            self.n_reads += 1
            self.read_bytes += request.size
            self._wss_read.add_many(blocks)

    def add_many(self, requests: Iterable[IORequest]) -> None:
        for request in requests:
            self.add(request)

    @property
    def n_requests(self) -> int:
        return self.n_reads + self.n_writes

    def profile(self, percentiles=(25.0, 50.0, 75.0, 90.0, 95.0)) -> StreamingVolumeProfile:
        """Snapshot the accumulated state as an immutable profile."""
        if self.n_requests == 0:
            raise ValueError("no requests accumulated")

        def reservoir_percentiles(sampler: ReservoirSampler) -> Dict[float, float]:
            sample = sampler.sample()
            if len(sample) == 0:
                return {}
            values = np.percentile(sample, list(percentiles))
            return {float(p): float(v) for p, v in zip(percentiles, values)}

        return StreamingVolumeProfile(
            volume_id=self.volume_id,
            n_requests=self.n_requests,
            n_reads=self.n_reads,
            n_writes=self.n_writes,
            read_bytes=self.read_bytes,
            write_bytes=self.write_bytes,
            start_time=float(self._first_ts),
            end_time=float(self._last_ts),
            wss_total_bytes=self._wss_total.estimate() * self.block_size,
            wss_read_bytes=self._wss_read.estimate() * self.block_size,
            wss_write_bytes=self._wss_write.estimate() * self.block_size,
            size_percentiles=reservoir_percentiles(self._sizes),
            interarrival_percentiles=reservoir_percentiles(self._gaps),
        )


def stream_profile_requests(
    requests: Iterable[IORequest],
    block_size: int = DEFAULT_BLOCK_SIZE,
    reservoir_size: int = 4096,
    hll_precision: int = 14,
) -> Dict[str, StreamingVolumeProfile]:
    """Profile a multi-volume request stream in one pass.

    Memory is O(volumes), independent of the stream length.  Requests of
    each volume must be in time order (global order is not required).
    """
    profilers: Dict[str, StreamingVolumeProfiler] = {}
    for request in requests:
        profiler = profilers.get(request.volume)
        if profiler is None:
            profiler = StreamingVolumeProfiler(
                request.volume,
                block_size=block_size,
                reservoir_size=reservoir_size,
                hll_precision=hll_precision,
                seed=len(profilers),
            )
            profilers[request.volume] = profiler
        profiler.add(request)
    return {vid: p.profile() for vid, p in profilers.items() if p.n_requests}
