"""Structured comparison of two trace datasets.

The paper's method is inherently comparative (AliCloud vs MSRC).  This
module packages that method as an API: :func:`compare_datasets` computes
the headline metric per analysis axis for both datasets and returns a
:class:`WorkloadComparison` that renders as the side-by-side table the
paper's Section III-C narrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..trace.dataset import TraceDataset
from .aggregate import basic_statistics
from .load_intensity import average_intensity, burstiness_ratio, write_read_ratio
from .report import format_duration, format_table
from .spatial import dataset_mostly_traffic, randomness_ratio, update_coverage
from .temporal import adjacent_access_counts, dataset_adjacent_access_times

__all__ = ["DatasetSummary", "WorkloadComparison", "compare_datasets"]


@dataclass(frozen=True)
class DatasetSummary:
    """Headline characterization metrics of one dataset."""

    name: str
    n_volumes: int
    n_requests: int
    write_read_ratio: float
    frac_write_dominant: float
    read_wss_fraction: float
    median_intensity: float
    median_burstiness: float
    median_randomness: float
    median_update_coverage: float
    writes_to_write_mostly: float
    waw_raw_count_ratio: float
    median_waw_time: float
    median_raw_time: float


def _summarize(dataset: TraceDataset, peak_interval: float) -> DatasetSummary:
    volumes = dataset.non_empty_volumes()
    if not volumes:
        raise ValueError(f"dataset {dataset.name!r} has no requests")

    def med(fn) -> float:
        vals = np.array([fn(v) for v in volumes], dtype=np.float64)
        vals = vals[np.isfinite(vals)]
        return float(np.median(vals)) if len(vals) else float("nan")

    stats = basic_statistics(dataset)
    counts = adjacent_access_counts(dataset)
    times = dataset_adjacent_access_times(dataset)
    mostly = dataset_mostly_traffic(dataset)
    wr = [write_read_ratio(v) for v in volumes]
    return DatasetSummary(
        name=dataset.name,
        n_volumes=dataset.n_volumes,
        n_requests=dataset.n_requests,
        write_read_ratio=dataset.n_writes / max(dataset.n_reads, 1),
        frac_write_dominant=float(np.mean([r > 1 for r in wr])),
        read_wss_fraction=stats.read_wss_fraction,
        median_intensity=med(average_intensity),
        median_burstiness=med(lambda v: burstiness_ratio(v, peak_interval)),
        median_randomness=med(randomness_ratio),
        median_update_coverage=med(update_coverage),
        writes_to_write_mostly=mostly.write_to_write_mostly,
        waw_raw_count_ratio=counts["WAW"] / max(counts["RAW"], 1),
        median_waw_time=float(np.median(times.waw)) if len(times.waw) else float("nan"),
        median_raw_time=float(np.median(times.raw)) if len(times.raw) else float("nan"),
    )


_ROW_SPECS = [
    ("volumes", "n_volumes", "{:,}"),
    ("requests", "n_requests", "{:,}"),
    ("W:R request ratio", "write_read_ratio", "{:.2f}"),
    ("write-dominant volumes", "frac_write_dominant", "{:.1%}"),
    ("read share of WSS", "read_wss_fraction", "{:.1%}"),
    ("median intensity (req/s)", "median_intensity", "{:.2f}"),
    ("median burstiness ratio", "median_burstiness", "{:.1f}"),
    ("median randomness ratio", "median_randomness", "{:.1%}"),
    ("median update coverage", "median_update_coverage", "{:.1%}"),
    ("writes -> write-mostly blocks", "writes_to_write_mostly", "{:.1%}"),
    ("WAW/RAW count ratio", "waw_raw_count_ratio", "{:.2f}"),
    ("median WAW time", "median_waw_time", "duration"),
    ("median RAW time", "median_raw_time", "duration"),
]


@dataclass(frozen=True)
class WorkloadComparison:
    """Two dataset summaries, renderable side by side."""

    left: DatasetSummary
    right: DatasetSummary

    def rows(self) -> List[List[str]]:
        out = []
        for label, attr, fmt in _ROW_SPECS:
            lv, rv = getattr(self.left, attr), getattr(self.right, attr)
            if fmt == "duration":
                out.append([label, format_duration(lv), format_duration(rv)])
            else:
                out.append([label, _safe_format(fmt, lv), _safe_format(fmt, rv)])
        return out

    def to_table(self, title: str = "Workload comparison") -> str:
        return format_table(
            ["metric", self.left.name, self.right.name], self.rows(), title=title
        )

    def cloud_like(self) -> Optional[str]:
        """Name of the side that looks more like the paper's cloud trace
        (write-dominant + high update coverage), or None on a tie."""
        score_left = (self.left.write_read_ratio > self.right.write_read_ratio) + (
            self.left.median_update_coverage > self.right.median_update_coverage
        )
        if score_left == 1:
            return None
        return self.left.name if score_left == 2 else self.right.name


def _safe_format(fmt: str, value: float) -> str:
    if isinstance(value, float) and not np.isfinite(value):
        return "-"
    return fmt.format(value)


def compare_datasets(
    left: TraceDataset, right: TraceDataset, peak_interval: float = 60.0
) -> WorkloadComparison:
    """Characterize two datasets side by side (the paper's method as API)."""
    return WorkloadComparison(
        left=_summarize(left, peak_interval), right=_summarize(right, peak_interval)
    )
