"""Characterization metrics: the paper's primary contribution.

Organized along the paper's three analysis axes — load intensity
(:mod:`~repro.core.load_intensity`), spatial patterns
(:mod:`~repro.core.spatial`), temporal patterns
(:mod:`~repro.core.temporal`) — plus fleet aggregation, cache analysis,
per-volume profiles, the 15 findings, and text reporting.
"""

from ..trace.blocks import (
    BlockEvents,
    block_events,
    block_range,
    block_traffic,
    expand_to_blocks,
    unique_blocks,
    working_set_size,
)
from .aggregate import (
    TIB,
    BasicStatistics,
    active_days_cdf,
    basic_statistics,
    request_size_cdf,
    volume_mean_size_cdf,
    write_read_ratio_cdf,
)
from .cache_analysis import (
    DEFAULT_CACHE_FRACTIONS,
    MissRatioSummary,
    VolumeCacheResult,
    dataset_miss_ratios,
    volume_miss_ratios,
)
from .comparison import DatasetSummary, WorkloadComparison, compare_datasets
from .experiments import EXPERIMENTS, ExperimentContext, render_experiments
from .findings import FINDING_TITLES, Finding, evaluate_findings
from .hotspots import ZipfFit, concentration_curve, fit_zipf, ranked_block_traffic
from .load_intensity import (
    DEFAULT_ACTIVITY_INTERVAL,
    DEFAULT_PEAK_INTERVAL,
    ActiveVolumeTimeseries,
    OverallIntensity,
    active_days,
    active_period_seconds,
    active_volume_timeseries,
    average_intensity,
    burstiness_ratio,
    interarrival_percentile_groups,
    interarrival_times,
    overall_intensity,
    peak_intensity,
    write_read_ratio,
)
from .report import (
    ascii_cdf,
    ascii_curve,
    format_boxplot_rows,
    format_bytes,
    format_cdf,
    format_duration,
    format_table,
)
from .seasonality import PeriodEstimate, autocorrelation, detect_period
from .spatial import (
    DEFAULT_RANDOMNESS_THRESHOLD,
    DEFAULT_RANDOMNESS_WINDOW,
    MOSTLY_THRESHOLD,
    MostlyTraffic,
    WorkingSets,
    dataset_mostly_traffic,
    mostly_traffic,
    random_request_mask,
    randomness_ratio,
    topk_block_traffic_fraction,
    update_coverage,
    working_sets,
)
from .streaming_profile import (
    StreamingVolumeProfile,
    StreamingVolumeProfiler,
    stream_profile_requests,
)
from .temporal import (
    TRANSITION_TYPES,
    AdjacentAccessTimes,
    adjacent_access_counts,
    adjacent_access_times,
    dataset_adjacent_access_times,
    dataset_update_intervals,
    update_intervals,
)
from .volume_profile import VolumeProfile, compute_profile

__all__ = [
    # blocks
    "BlockEvents",
    "block_events",
    "block_range",
    "block_traffic",
    "expand_to_blocks",
    "unique_blocks",
    "working_set_size",
    # load intensity
    "DEFAULT_ACTIVITY_INTERVAL",
    "DEFAULT_PEAK_INTERVAL",
    "ActiveVolumeTimeseries",
    "OverallIntensity",
    "active_days",
    "active_period_seconds",
    "active_volume_timeseries",
    "average_intensity",
    "burstiness_ratio",
    "interarrival_percentile_groups",
    "interarrival_times",
    "overall_intensity",
    "peak_intensity",
    "write_read_ratio",
    # spatial
    "DEFAULT_RANDOMNESS_THRESHOLD",
    "DEFAULT_RANDOMNESS_WINDOW",
    "MOSTLY_THRESHOLD",
    "MostlyTraffic",
    "WorkingSets",
    "dataset_mostly_traffic",
    "mostly_traffic",
    "random_request_mask",
    "randomness_ratio",
    "topk_block_traffic_fraction",
    "update_coverage",
    "working_sets",
    # temporal
    "TRANSITION_TYPES",
    "AdjacentAccessTimes",
    "adjacent_access_counts",
    "adjacent_access_times",
    "dataset_adjacent_access_times",
    "dataset_update_intervals",
    "update_intervals",
    # cache analysis
    "DEFAULT_CACHE_FRACTIONS",
    "MissRatioSummary",
    "VolumeCacheResult",
    "dataset_miss_ratios",
    "volume_miss_ratios",
    # aggregate
    "TIB",
    "BasicStatistics",
    "active_days_cdf",
    "basic_statistics",
    "request_size_cdf",
    "volume_mean_size_cdf",
    "write_read_ratio_cdf",
    # profiles & findings
    "VolumeProfile",
    "compute_profile",
    "EXPERIMENTS",
    "ExperimentContext",
    "render_experiments",
    "StreamingVolumeProfile",
    "StreamingVolumeProfiler",
    "stream_profile_requests",
    "DatasetSummary",
    "WorkloadComparison",
    "compare_datasets",
    "ZipfFit",
    "concentration_curve",
    "fit_zipf",
    "ranked_block_traffic",
    "PeriodEstimate",
    "autocorrelation",
    "detect_period",
    "FINDING_TITLES",
    "Finding",
    "evaluate_findings",
    # report
    "ascii_cdf",
    "ascii_curve",
    "format_boxplot_rows",
    "format_bytes",
    "format_cdf",
    "format_duration",
    "format_table",
]
