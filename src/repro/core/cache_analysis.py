"""LRU caching analysis (paper Finding 15).

For each volume, simulate a unified read+write LRU cache sized to a
fraction of the volume's working set and report per-op miss ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..cache.base import CachePolicy
from ..cache.lru import LRUCache
from ..cache.simulator import CacheSimResult, simulate_stream
from ..trace.blocks import block_events
from ..trace.dataset import TraceDataset, VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE

__all__ = [
    "DEFAULT_CACHE_FRACTIONS",
    "VolumeCacheResult",
    "volume_miss_ratios",
    "dataset_miss_ratios",
    "MissRatioSummary",
]

#: WSS fractions the paper evaluates (1% and 10%).
DEFAULT_CACHE_FRACTIONS = (0.01, 0.10)


@dataclass(frozen=True)
class VolumeCacheResult:
    """Miss ratios of one volume at one cache size."""

    volume_id: str
    cache_fraction: float
    capacity_blocks: int
    result: CacheSimResult

    @property
    def read_miss_ratio(self) -> float:
        return self.result.read_miss_ratio

    @property
    def write_miss_ratio(self) -> float:
        return self.result.write_miss_ratio


def volume_miss_ratios(
    trace: VolumeTrace,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    block_size: int = DEFAULT_BLOCK_SIZE,
    policy_factory: Callable[[int], CachePolicy] = LRUCache,
) -> List[VolumeCacheResult]:
    """Simulate caches sized to fractions of the volume's WSS.

    The block-event expansion is shared across cache sizes; capacity is
    ``max(1, round(fraction * WSS_blocks))``.
    """
    ev = block_events(trace, block_size)
    wss_blocks = len(np.unique(ev.block_id)) if len(ev) else 0
    out: List[VolumeCacheResult] = []
    for frac in cache_fractions:
        if not 0 < frac <= 1:
            raise ValueError(f"cache fraction must be in (0, 1], got {frac}")
        if wss_blocks == 0:
            continue
        capacity = max(1, int(round(frac * wss_blocks)))
        result = simulate_stream(ev.block_id, ev.is_write, policy_factory(capacity))
        out.append(
            VolumeCacheResult(
                volume_id=trace.volume_id,
                cache_fraction=frac,
                capacity_blocks=capacity,
                result=result,
            )
        )
    return out


@dataclass(frozen=True)
class MissRatioSummary:
    """Per-op miss-ratio samples across a fleet, keyed by cache fraction."""

    read: Dict[float, np.ndarray]
    write: Dict[float, np.ndarray]

    def fractions(self) -> List[float]:
        return sorted(self.read)


def dataset_miss_ratios(
    dataset: TraceDataset,
    cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
    block_size: int = DEFAULT_BLOCK_SIZE,
    policy_factory: Callable[[int], CachePolicy] = LRUCache,
) -> MissRatioSummary:
    """Per-volume miss ratios across the fleet (paper Figure 18 data).

    Volumes without reads (writes) contribute no sample to the read
    (write) distribution at that cache size.
    """
    read: Dict[float, List[float]] = {float(f): [] for f in cache_fractions}
    write: Dict[float, List[float]] = {float(f): [] for f in cache_fractions}
    for trace in dataset.volumes():
        for res in volume_miss_ratios(trace, cache_fractions, block_size, policy_factory):
            if res.result.n_reads:
                read[res.cache_fraction].append(res.read_miss_ratio)
            if res.result.n_writes:
                write[res.cache_fraction].append(res.write_miss_ratio)
    return MissRatioSummary(
        read={f: np.asarray(v) for f, v in read.items()},
        write={f: np.asarray(v) for f, v in write.items()},
    )
