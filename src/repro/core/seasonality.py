"""Diurnal / periodic load-pattern detection.

Interactive cloud applications carry daily rhythms; the synthetic fleets
model them with sinusoidal arrival modulation.  This module detects such
periodicity from a request stream: bucket the timestamps, autocorrelate
the per-interval counts, and report the dominant period and its strength.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..stats.timeseries import bucket_counts
from ..trace.dataset import VolumeTrace

__all__ = ["PeriodEstimate", "autocorrelation", "detect_period"]


@dataclass(frozen=True)
class PeriodEstimate:
    """Dominant periodicity of a request-rate series."""

    #: period in seconds (NaN when nothing periodic was found)
    period: float
    #: autocorrelation value at the detected period (0..1 scale)
    strength: float
    #: bucketing interval used
    interval: float

    @property
    def detected(self) -> bool:
        return np.isfinite(self.period)


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Normalized autocorrelation of a series for lags ``1..max_lag``.

    Mean-removed, biased estimator normalized by lag-0 variance; values
    fall in [-1, 1].
    """
    x = np.asarray(series, dtype=np.float64)
    if len(x) < 2:
        raise ValueError("series too short")
    if max_lag < 1 or max_lag >= len(x):
        raise ValueError("max_lag must be in [1, len(series))")
    x = x - x.mean()
    denom = float(np.dot(x, x))
    if denom == 0:
        return np.zeros(max_lag)
    return np.array(
        [float(np.dot(x[: len(x) - lag], x[lag:])) / denom for lag in range(1, max_lag + 1)]
    )


def detect_period(
    trace: VolumeTrace,
    interval: float,
    min_period: Optional[float] = None,
    max_period: Optional[float] = None,
    min_strength: float = 0.15,
) -> PeriodEstimate:
    """Detect the dominant period of a volume's request rate.

    The per-``interval`` request counts are autocorrelated; the largest
    local-maximum lag inside ``[min_period, max_period]`` whose
    autocorrelation exceeds ``min_strength`` is reported.  Returns a
    non-detection (NaN period) for aperiodic volumes.
    """
    if len(trace) < 4:
        return PeriodEstimate(float("nan"), 0.0, interval)
    _, counts = bucket_counts(trace.timestamps, interval)
    n = len(counts)
    if n < 8:
        return PeriodEstimate(float("nan"), 0.0, interval)
    lo_lag = max(2, int(np.ceil((min_period or 2 * interval) / interval)))
    hi_lag = int(np.floor((max_period or (n // 2) * interval) / interval))
    hi_lag = min(hi_lag, n - 2)
    if hi_lag < lo_lag:
        return PeriodEstimate(float("nan"), 0.0, interval)
    ac = autocorrelation(counts, hi_lag)
    # Local maxima within the window (1-based lags -> 0-based array).
    best_lag, best_val = None, min_strength
    for lag in range(lo_lag, hi_lag + 1):
        val = ac[lag - 1]
        left = ac[lag - 2] if lag >= 2 else -np.inf
        right = ac[lag] if lag < hi_lag else -np.inf
        if val > best_val and val >= left and val >= right:
            best_lag, best_val = lag, val
    if best_lag is None:
        return PeriodEstimate(float("nan"), 0.0, interval)
    return PeriodEstimate(best_lag * interval, float(best_val), interval)
