"""Fleet-level aggregate statistics (paper Section III-C, Table I, Figs 2-4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..stats.cdf import EmpiricalCDF
from ..trace.dataset import TraceDataset
from ..trace.record import DEFAULT_BLOCK_SIZE
from .load_intensity import active_days, write_read_ratio

__all__ = [
    "BasicStatistics",
    "basic_statistics",
    "request_size_cdf",
    "volume_mean_size_cdf",
    "active_days_cdf",
    "write_read_ratio_cdf",
    "TIB",
]

#: Bytes per tebibyte, the unit of Table I's traffic and WSS rows.
TIB = 1024**4


@dataclass(frozen=True)
class BasicStatistics:
    """The rows of the paper's Table I for one dataset."""

    name: str
    n_volumes: int
    duration_days: float
    n_reads_millions: float
    n_writes_millions: float
    read_traffic_tib: float
    write_traffic_tib: float
    update_traffic_tib: float
    wss_total_tib: float
    wss_read_tib: float
    wss_write_tib: float
    wss_update_tib: float

    @property
    def n_requests_millions(self) -> float:
        return self.n_reads_millions + self.n_writes_millions

    @property
    def write_read_request_ratio(self) -> float:
        if self.n_reads_millions == 0:
            return float("inf")
        return self.n_writes_millions / self.n_reads_millions

    @property
    def read_wss_fraction(self) -> float:
        """Fraction of the total WSS touched by reads (paper: 34.3% vs 98.4%)."""
        return self.wss_read_tib / self.wss_total_tib if self.wss_total_tib else float("nan")

    @property
    def write_wss_fraction(self) -> float:
        return self.wss_write_tib / self.wss_total_tib if self.wss_total_tib else float("nan")


def basic_statistics(
    dataset: TraceDataset,
    block_size: int = DEFAULT_BLOCK_SIZE,
    duration_days: Optional[float] = None,
    workers: int = 1,
) -> BasicStatistics:
    """Compute Table I for a dataset.

    *Update traffic* is the write traffic to blocks after their first
    write (re-writes); WSS rows count distinct 4 KiB blocks.  The trace
    duration defaults to the observed span rounded up to whole days.
    ``workers > 1`` fans the per-volume block expansions across a process
    pool; the result is identical for every worker count.
    """
    from ..engine.runner import parallel_map

    per_volume = parallel_map(
        _working_sets_and_update_traffic,
        dataset.volumes(),
        workers,
        block_size=block_size,
    )
    wss_total = wss_read = wss_write = wss_update = 0
    update_traffic = 0
    for ws, upd in per_volume:
        wss_total += ws.total
        wss_read += ws.read
        wss_write += ws.write
        wss_update += ws.update
        update_traffic += upd
    if duration_days is None:
        try:
            duration_days = float(np.ceil(dataset.duration / 86400.0))
        except ValueError:
            duration_days = 0.0
    return BasicStatistics(
        name=dataset.name,
        n_volumes=dataset.n_volumes,
        duration_days=duration_days,
        n_reads_millions=dataset.n_reads / 1e6,
        n_writes_millions=dataset.n_writes / 1e6,
        read_traffic_tib=dataset.read_bytes / TIB,
        write_traffic_tib=dataset.write_bytes / TIB,
        update_traffic_tib=update_traffic / TIB,
        wss_total_tib=wss_total / TIB,
        wss_read_tib=wss_read / TIB,
        wss_write_tib=wss_write / TIB,
        wss_update_tib=wss_update / TIB,
    )


def _working_sets_and_update_traffic(trace, block_size: int):
    """Working sets plus update-traffic bytes from one block expansion.

    Update traffic counts, per block, all write bytes beyond the block's
    first write (the trace arrays are already in time order, so within a
    stable per-block grouping the first row is the first write).
    """
    from ..trace.blocks import block_events
    from .spatial import WorkingSets

    ev = block_events(trace, block_size)
    if len(ev) == 0:
        return WorkingSets(0, 0, 0, 0), 0
    total = len(np.unique(ev.block_id))
    read = len(np.unique(ev.block_id[~ev.is_write]))
    wmask = ev.is_write
    wblocks = ev.block_id[wmask]
    if len(wblocks):
        order = np.argsort(wblocks, kind="stable")
        blocks_sorted = wblocks[order]
        nbytes_sorted = ev.nbytes[wmask][order]
        first_touch = np.ones(len(blocks_sorted), dtype=bool)
        first_touch[1:] = blocks_sorted[1:] != blocks_sorted[:-1]
        write = int(first_touch.sum())
        update_traffic = int(nbytes_sorted[~first_touch].sum())
        counts = np.diff(np.concatenate([np.where(first_touch)[0], [len(blocks_sorted)]]))
        update = int(np.count_nonzero(counts > 1))
    else:
        write = update = update_traffic = 0
    ws = WorkingSets(
        total=total * block_size,
        read=read * block_size,
        write=write * block_size,
        update=update * block_size,
    )
    return ws, update_traffic


def request_size_cdf(dataset: TraceDataset, op: Optional[str] = None) -> EmpiricalCDF:
    """CDF of request sizes across all requests (paper Figure 2(a)).

    ``op`` restricts to ``"read"`` or ``"write"`` requests.
    """
    parts: List[np.ndarray] = []
    for trace in dataset.volumes():
        if op == "read":
            parts.append(trace.sizes[~trace.is_write])
        elif op == "write":
            parts.append(trace.sizes[trace.is_write])
        elif op is None:
            parts.append(trace.sizes)
        else:
            raise ValueError(f"op must be None, 'read', or 'write', got {op!r}")
    sizes = np.concatenate([p for p in parts if len(p)]) if any(len(p) for p in parts) else None
    if sizes is None:
        raise ValueError("dataset has no matching requests")
    return EmpiricalCDF(sizes)


def volume_mean_size_cdf(dataset: TraceDataset, op: Optional[str] = None) -> EmpiricalCDF:
    """CDF of per-volume average request sizes (paper Figure 2(b))."""
    means: List[float] = []
    for trace in dataset.volumes():
        if op == "read":
            sizes = trace.sizes[~trace.is_write]
        elif op == "write":
            sizes = trace.sizes[trace.is_write]
        elif op is None:
            sizes = trace.sizes
        else:
            raise ValueError(f"op must be None, 'read', or 'write', got {op!r}")
        if len(sizes):
            means.append(float(sizes.mean()))
    if not means:
        raise ValueError("dataset has no matching requests")
    return EmpiricalCDF(means)


def active_days_cdf(
    dataset: TraceDataset, day_seconds: float = 86400.0, origin: Optional[float] = None
) -> EmpiricalCDF:
    """CDF of per-volume active-day counts (paper Figure 3).

    Volumes with no requests count as zero active days.
    """
    t0 = dataset.start_time if origin is None else origin
    counts = [active_days(v, t0, day_seconds) for v in dataset.volumes()]
    return EmpiricalCDF(counts)


def write_read_ratio_cdf(dataset: TraceDataset) -> EmpiricalCDF:
    """CDF of per-volume write-to-read ratios (paper Figure 4).

    Read-free volumes have infinite ratio; to keep the CDF finite they are
    clamped to one order of magnitude above the largest finite ratio, which
    preserves every threshold comparison the paper makes (>1, >100).
    """
    ratios = [write_read_ratio(v) for v in dataset.volumes()]
    finite = [r for r in ratios if np.isfinite(r)]
    cap = (max(finite) if finite else 1.0) * 10
    cleaned = [cap if np.isinf(r) else r for r in ratios if not np.isnan(r)]
    if not cleaned:
        raise ValueError("dataset has no non-empty volumes")
    return EmpiricalCDF(cleaned)
