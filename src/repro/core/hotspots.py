"""Hot-block analysis and Zipf skew estimation.

Finding 9's aggregation metrics summarize the skew of block popularity;
this module exposes the underlying distribution: ranked per-block traffic,
the concentration curve (what fraction of traffic the top-x% of blocks
hold), and a Zipf exponent estimate via log-log regression on the
rank-frequency series — the standard way to parameterize hot-spot models
(e.g. to fit :class:`~repro.synth.address.ZipfHotspot` to a real volume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..trace.blocks import block_traffic
from ..trace.dataset import VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE

__all__ = ["ZipfFit", "ranked_block_traffic", "concentration_curve", "fit_zipf"]


def ranked_block_traffic(
    trace: VolumeTrace, op: Optional[str] = None, block_size: int = DEFAULT_BLOCK_SIZE
) -> np.ndarray:
    """Per-block traffic (bytes) sorted descending (rank 0 = hottest).

    ``op`` restricts to ``"read"`` or ``"write"`` traffic; default sums
    both.  Untouched blocks are excluded.
    """
    _, read_bytes, write_bytes = block_traffic(trace, block_size)
    if op == "read":
        traffic = read_bytes
    elif op == "write":
        traffic = write_bytes
    elif op is None:
        traffic = read_bytes + write_bytes
    else:
        raise ValueError(f"op must be None, 'read', or 'write', got {op!r}")
    traffic = traffic[traffic > 0]
    return np.sort(traffic)[::-1]


def concentration_curve(ranked: np.ndarray, points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Traffic concentration: ``(block_fraction, traffic_fraction)``.

    ``traffic_fraction[i]`` is the share of traffic held by the hottest
    ``block_fraction[i]`` of blocks — the Lorenz-style curve behind
    Figure 11's top-1%/top-10% readings.
    """
    ranked = np.asarray(ranked, dtype=np.float64)
    if len(ranked) == 0:
        raise ValueError("no traffic to analyze")
    if np.any(np.diff(ranked) > 0):
        raise ValueError("ranked traffic must be sorted descending")
    cum = np.cumsum(ranked) / ranked.sum()
    idx = np.unique(np.linspace(0, len(ranked) - 1, min(points, len(ranked))).astype(int))
    return (idx + 1) / len(ranked), cum[idx]


@dataclass(frozen=True)
class ZipfFit:
    """Zipf exponent fit of a rank-frequency series."""

    s: float
    #: R^2 of the log-log regression (1 = perfectly Zipfian)
    r_squared: float
    n_blocks: int

    @property
    def is_skewed(self) -> bool:
        """Heuristic: an exponent above ~0.5 marks meaningful skew."""
        return self.s > 0.5


def fit_zipf(ranked: np.ndarray, min_blocks: int = 10) -> ZipfFit:
    """Least-squares fit of ``traffic ~ rank^-s`` in log-log space.

    The fit uses all ranks with positive traffic; heavily discretized
    tails (many equal-traffic blocks) lower the R^2, which is the signal
    that a Zipf model is a poor description.
    """
    ranked = np.asarray(ranked, dtype=np.float64)
    ranked = ranked[ranked > 0]
    if len(ranked) < min_blocks:
        raise ValueError(f"need at least {min_blocks} blocks with traffic")
    log_rank = np.log(np.arange(1, len(ranked) + 1, dtype=np.float64))
    log_traffic = np.log(ranked)
    slope, intercept = np.polyfit(log_rank, log_traffic, 1)
    predicted = slope * log_rank + intercept
    ss_res = float(np.sum((log_traffic - predicted) ** 2))
    ss_tot = float(np.sum((log_traffic - log_traffic.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ZipfFit(s=float(-slope), r_squared=r_squared, n_blocks=len(ranked))
