"""Load-intensity metrics (paper Section IV-A, Findings 1-7).

Covers average/peak request intensities, burstiness ratios, inter-arrival
time percentiles, per-day and per-interval activeness, and the
active-volume time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..stats.quantiles import PAPER_PERCENTILES, percentile_groups
from ..stats.timeseries import bucket_edges, interval_activity, max_interval_count
from ..trace.dataset import TraceDataset, VolumeTrace

__all__ = [
    "average_intensity",
    "peak_intensity",
    "burstiness_ratio",
    "OverallIntensity",
    "overall_intensity",
    "interarrival_times",
    "interarrival_percentile_groups",
    "write_read_ratio",
    "active_days",
    "ActiveVolumeTimeseries",
    "active_volume_timeseries",
    "active_period_seconds",
    "DEFAULT_PEAK_INTERVAL",
    "DEFAULT_ACTIVITY_INTERVAL",
]

#: Interval used for peak-intensity measurement (paper: one minute).
DEFAULT_PEAK_INTERVAL = 60.0

#: Interval used for fine-grained activeness (paper: ten minutes).
DEFAULT_ACTIVITY_INTERVAL = 600.0


def average_intensity(trace: VolumeTrace) -> float:
    """Average intensity in req/s: #requests / (last ts - first ts).

    A volume whose requests all share one timestamp has zero elapsed time;
    we return ``inf`` for multi-request instantaneous bursts and 0.0 for
    single-request volumes (a single request defines no rate).
    """
    n = len(trace)
    if n == 0:
        return 0.0
    if n == 1:
        return 0.0
    duration = trace.duration
    if duration <= 0:
        return float("inf")
    return n / duration


def peak_intensity(trace: VolumeTrace, interval: float = DEFAULT_PEAK_INTERVAL) -> float:
    """Peak intensity in req/s: max requests in any ``interval``-second
    window, normalized to per-second."""
    if len(trace) == 0:
        return 0.0
    return max_interval_count(trace.timestamps, interval) / interval


def burstiness_ratio(trace: VolumeTrace, interval: float = DEFAULT_PEAK_INTERVAL) -> float:
    """Peak-to-average intensity ratio (Finding 2).

    Undefined (NaN) for volumes whose average intensity is zero or
    infinite.
    """
    avg = average_intensity(trace)
    if avg <= 0 or not np.isfinite(avg):
        return float("nan")
    return peak_intensity(trace, interval) / avg


@dataclass(frozen=True)
class OverallIntensity:
    """Fleet-level intensity summary (paper Table II)."""

    peak_req_per_s: float
    average_req_per_s: float

    @property
    def burstiness_ratio(self) -> float:
        if self.average_req_per_s <= 0:
            return float("nan")
        return self.peak_req_per_s / self.average_req_per_s


def overall_intensity(
    dataset: TraceDataset, interval: float = DEFAULT_PEAK_INTERVAL
) -> OverallIntensity:
    """Aggregate all volumes' requests into one stream and measure its
    average and peak intensity (Table II)."""
    all_ts = [v.timestamps for v in dataset.non_empty_volumes()]
    if not all_ts:
        raise ValueError("dataset has no requests")
    merged = np.sort(np.concatenate(all_ts))
    duration = merged[-1] - merged[0]
    avg = len(merged) / duration if duration > 0 else float("inf")
    peak = max_interval_count(merged, interval) / interval
    return OverallIntensity(peak_req_per_s=peak, average_req_per_s=avg)


def interarrival_times(trace: VolumeTrace) -> np.ndarray:
    """Elapsed times between adjacent requests of the volume (seconds)."""
    if len(trace) < 2:
        return np.array([], dtype=np.float64)
    return np.diff(trace.timestamps)


def interarrival_percentile_groups(
    dataset: TraceDataset, percentiles: Sequence[float] = PAPER_PERCENTILES
) -> Dict[float, np.ndarray]:
    """Finding 4's data: for each percentile group, the array of per-volume
    inter-arrival-time percentiles across all volumes with >=2 requests."""
    samples = [interarrival_times(v) for v in dataset.volumes()]
    return percentile_groups(samples, percentiles)


def write_read_ratio(trace: VolumeTrace) -> float:
    """#writes / #reads; ``inf`` for volumes with writes but no reads and
    NaN for empty volumes."""
    r, w = trace.n_reads, trace.n_writes
    if r == 0 and w == 0:
        return float("nan")
    if r == 0:
        return float("inf")
    return w / r


def active_days(
    trace: VolumeTrace,
    t0: float,
    day_seconds: float = 86400.0,
    n_days: Optional[int] = None,
) -> int:
    """Number of days (from ``t0``) in which the volume has >=1 request."""
    if len(trace) == 0:
        return 0
    day_idx = np.floor((trace.timestamps - t0) / day_seconds).astype(np.int64)
    if n_days is not None:
        day_idx = day_idx[(day_idx >= 0) & (day_idx < n_days)]
    return len(np.unique(day_idx))


@dataclass(frozen=True)
class ActiveVolumeTimeseries:
    """Numbers of active / read-active / write-active volumes per interval
    (paper Figure 8)."""

    edges: np.ndarray
    active: np.ndarray
    read_active: np.ndarray
    write_active: np.ndarray

    @property
    def times(self) -> np.ndarray:
        """Interval start times."""
        return self.edges[:-1]

    @property
    def n_intervals(self) -> int:
        return len(self.active)


def active_volume_timeseries(
    dataset: TraceDataset, interval: float = DEFAULT_ACTIVITY_INTERVAL
) -> ActiveVolumeTimeseries:
    """Count, per interval, the volumes with >=1 request / read / write."""
    t0, t1 = dataset.start_time, dataset.end_time
    edges = bucket_edges(t0, t1, interval)
    n = len(edges) - 1
    active = np.zeros(n, dtype=np.int64)
    read_active = np.zeros(n, dtype=np.int64)
    write_active = np.zeros(n, dtype=np.int64)
    for trace in dataset.volumes():
        if len(trace) == 0:
            continue
        active += interval_activity(trace.timestamps, interval, t0, t1)
        read_active += interval_activity(trace.timestamps[~trace.is_write], interval, t0, t1)
        write_active += interval_activity(trace.timestamps[trace.is_write], interval, t0, t1)
    return ActiveVolumeTimeseries(edges, active, read_active, write_active)


def active_period_seconds(
    trace: VolumeTrace,
    t0: float,
    t1: float,
    interval: float = DEFAULT_ACTIVITY_INTERVAL,
    op: Optional[str] = None,
) -> float:
    """Total active time: (#intervals with >=1 request) x interval length.

    ``op`` restricts to ``"read"``-active or ``"write"``-active time; the
    default counts any request (paper Figure 9).
    """
    if op == "read":
        ts = trace.timestamps[~trace.is_write]
    elif op == "write":
        ts = trace.timestamps[trace.is_write]
    elif op is None:
        ts = trace.timestamps
    else:
        raise ValueError(f"op must be None, 'read', or 'write', got {op!r}")
    return float(interval_activity(ts, interval, t0, t1).sum()) * interval
