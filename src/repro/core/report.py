"""Text rendering of tables and figure series.

The benchmark harness regenerates the paper's tables and figures as text:
tables as aligned columns, CDF figures as percentile series, boxplot
figures as five-number rows.  These helpers keep the rendering uniform
across all benches and the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from ..stats.boxplot import BoxplotStats
from ..stats.cdf import EmpiricalCDF

__all__ = [
    "format_table",
    "format_cdf",
    "format_boxplot_rows",
    "format_duration",
    "format_bytes",
    "ascii_curve",
    "ascii_cdf",
]

Cell = Union[str, int, float]


def _fmt_cell(value: Cell) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return f"{value:,}"
    if value != value:  # NaN
        return "-"
    if isinstance(value, (float, np.floating)):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:,.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cdf(
    cdf: EmpiricalCDF,
    label: str,
    percentiles: Sequence[float] = (25, 50, 75, 90, 95, 99),
    value_formatter=None,
) -> str:
    """Render a CDF as its percentile series (a text stand-in for a curve)."""
    fmt = value_formatter or _fmt_cell
    parts = [f"p{int(p) if float(p).is_integer() else p}={fmt(cdf.percentile(p))}" for p in percentiles]
    return f"{label}: n={cdf.n} " + " ".join(parts)


def format_boxplot_rows(
    named_samples: Dict[str, Sequence[float]], title: str = "", value_formatter=None
) -> str:
    """Render named samples as boxplot five-number rows."""
    fmt = value_formatter or _fmt_cell
    rows: List[List[Cell]] = []
    for name, samples in named_samples.items():
        arr = np.asarray(samples, dtype=np.float64)
        arr = arr[np.isfinite(arr)]
        if len(arr) == 0:
            rows.append([name, "-", "-", "-", "-", "-", 0])
            continue
        bp = BoxplotStats.from_samples(arr)
        rows.append(
            [
                name,
                fmt(bp.whisker_low),
                fmt(bp.q1),
                fmt(bp.median),
                fmt(bp.q3),
                fmt(bp.whisker_high),
                bp.n,
            ]
        )
    return format_table(
        ["series", "lo", "q1", "median", "q3", "hi", "n"], rows, title=title
    )


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
    logx: bool = False,
) -> str:
    """Render an (x, y) series as a monospace dot plot.

    A lightweight stand-in for the paper's figure panels in terminal
    output: y is binned onto ``height`` rows (top row = max), x onto
    ``width`` columns (optionally log-spaced).  Axis extents are printed
    on the frame.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if len(x) != len(y) or len(x) == 0:
        raise ValueError("xs and ys must be equal-length and non-empty")
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")
    if logx:
        if np.any(x <= 0):
            raise ValueError("logx requires positive x values")
        x = np.log10(x)
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    cols = np.clip(((x - x_lo) / x_span * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((y - y_lo) / y_span * (height - 1)).astype(int), 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{_fmt_cell(y_hi):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{_fmt_cell(y_lo):>10} +" + "-" * width + "+")
    left = f"{10 ** x_lo:.3g}" if logx else _fmt_cell(x_lo)
    right = f"{10 ** x_hi:.3g}" if logx else _fmt_cell(x_hi)
    lines.append(" " * 12 + left + " " * max(1, width - len(left) - len(right)) + right)
    return "\n".join(lines)


def ascii_cdf(
    cdf: EmpiricalCDF, width: int = 60, height: int = 12, label: str = "", logx: bool = False
) -> str:
    """Render an :class:`~repro.stats.cdf.EmpiricalCDF` as an ASCII curve."""
    xs, ys = cdf.series(max_points=width * 2)
    if logx:
        keep = xs > 0
        xs, ys = xs[keep], ys[keep]
        if len(xs) == 0:
            raise ValueError("logx requires positive sample values")
    return ascii_curve(xs, ys, width=width, height=height, label=label, logx=logx)


def format_duration(seconds: float) -> str:
    """Human-friendly duration: picks us/ms/s/min/h/days."""
    if seconds != seconds:
        return "-"
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}min"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def format_bytes(n: float) -> str:
    """Human-friendly byte size with binary units."""
    if n != n:
        return "-"
    units = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
    value = float(n)
    for unit in units:
        if abs(value) < 1024 or unit == units[-1]:
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}PiB"
