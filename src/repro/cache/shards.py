"""SHARDS: sampled reuse-distance / MRC estimation (Waldspurger et al.,
FAST'15; cited by the paper's Finding 15 discussion).

SHARDS hash-samples the *address space* at rate R: a block is tracked iff
``hash(block) mod P < R * P``.  Reuse distances measured on the sampled
stream are unbiased estimates of 1/R of the true distances, so scaling by
1/R recovers the full MRC at a fraction of the memory and time.
"""

from __future__ import annotations

import numpy as np

from .mrc import MissRatioCurve
from .reuse import INFINITE_DISTANCE, reuse_distances

__all__ = ["shards_sample_mask", "shards_mrc"]

#: Modulus for the spatial hash (as in the SHARDS paper).
_HASH_MODULUS = 1 << 24

# Splitmix64-style integer mixer: cheap, well-distributed, vectorizable.
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _mix64(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.uint64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * _MIX1
        x = (x ^ (x >> np.uint64(27))) * _MIX2
        x = x ^ (x >> np.uint64(31))
    return x


def shards_sample_mask(blocks: np.ndarray, rate: float, seed: int = 0) -> np.ndarray:
    """Boolean mask selecting the hash-sampled accesses.

    Sampling is by block id, so every access to a sampled block is kept —
    the property SHARDS needs for distance scaling to be unbiased.
    """
    if not 0 < rate <= 1:
        raise ValueError("rate must be in (0, 1]")
    blocks = np.asarray(blocks).astype(np.int64)
    seed_mix = np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
    hashed = _mix64(blocks.view(np.uint64) ^ seed_mix)
    threshold = np.uint64(int(rate * _HASH_MODULUS))
    return (hashed % np.uint64(_HASH_MODULUS)) < threshold


def shards_mrc(blocks: np.ndarray, rate: float = 0.01, seed: int = 0) -> MissRatioCurve:
    """Estimate the LRU MRC from a hash-sampled subset of the stream.

    Sampled reuse distances are scaled by ``1/rate`` (rounded) and the
    per-distance counts keep their sampled values; ratios are unaffected by
    count scaling, so miss ratios estimate the full-trace MRC directly.
    """
    blocks = np.asarray(blocks)
    mask = shards_sample_mask(blocks, rate, seed)
    sampled = blocks[mask]
    d = reuse_distances(sampled)
    cold = int(np.count_nonzero(d == INFINITE_DISTANCE))
    finite = d[d != INFINITE_DISTANCE]
    scaled = np.round(finite / rate).astype(np.int64)
    if len(scaled):
        uniq, counts = np.unique(scaled, return_counts=True)
    else:
        uniq = np.array([], dtype=np.int64)
        counts = np.array([], dtype=np.int64)
    return MissRatioCurve(distances=uniq, counts=counts, cold=cold, n=len(d))
