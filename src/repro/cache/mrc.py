"""Miss-ratio curves (MRCs) from reuse distances.

An LRU cache of capacity C misses exactly the accesses whose reuse
distance is >= C (cold accesses always miss), so the full MRC falls out of
one histogram over the reuse-distance stream — the technique behind
Counter Stacks [31] and SHARDS [28], both cited by the paper's Finding 15
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .reuse import INFINITE_DISTANCE, reuse_distances

__all__ = ["MissRatioCurve", "mrc_from_distances", "mrc_from_stream"]


@dataclass(frozen=True)
class MissRatioCurve:
    """LRU miss ratio as a function of cache capacity (in blocks).

    ``miss_ratio(c)`` is exact for every integer capacity: cold misses plus
    accesses whose reuse distance >= c, divided by total accesses.
    """

    #: Sorted distinct finite reuse distances observed.
    distances: np.ndarray
    #: Number of accesses at each distance in ``distances``.
    counts: np.ndarray
    #: Number of cold (first-touch) accesses.
    cold: int
    #: Total number of accesses.
    n: int

    def miss_ratio(self, capacity: int) -> float:
        """Exact LRU miss ratio at the given capacity (blocks)."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.n == 0:
            return float("nan")
        # Hits: accesses with distance < capacity.
        hit_idx = np.searchsorted(self.distances, capacity, side="left")
        hits = int(self.counts[:hit_idx].sum())
        return (self.n - hits) / self.n

    def miss_ratios(self, capacities: Sequence[int]) -> np.ndarray:
        return np.array([self.miss_ratio(c) for c in capacities])

    @property
    def compulsory_miss_ratio(self) -> float:
        """Miss ratio floor from cold accesses alone (infinite cache)."""
        return self.cold / self.n if self.n else float("nan")

    def working_set_blocks(self) -> int:
        """Number of distinct blocks (equals the cold-access count)."""
        return self.cold


def mrc_from_distances(distances: np.ndarray) -> MissRatioCurve:
    """Build an MRC from a reuse-distance stream (sentinel = cold)."""
    d = np.asarray(distances, dtype=np.int64)
    cold = int(np.count_nonzero(d == INFINITE_DISTANCE))
    finite = d[d != INFINITE_DISTANCE]
    if len(finite):
        uniq, counts = np.unique(finite, return_counts=True)
    else:
        uniq = np.array([], dtype=np.int64)
        counts = np.array([], dtype=np.int64)
    return MissRatioCurve(distances=uniq, counts=counts, cold=cold, n=len(d))


def mrc_from_stream(blocks: np.ndarray) -> MissRatioCurve:
    """Exact MRC of a block-id access stream."""
    return mrc_from_distances(reuse_distances(blocks))
