"""Exact LRU reuse-distance computation.

The reuse distance (stack distance) of an access is the number of distinct
blocks touched since the previous access to the same block; an LRU cache of
capacity C hits exactly the accesses with reuse distance < C.  Computed in
O(n log n) with a Fenwick tree over access positions (Mattson's stack
algorithm, tree formulation).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["reuse_distances", "INFINITE_DISTANCE"]

#: Sentinel distance for first-touch (cold) accesses.
INFINITE_DISTANCE = -1


class _Fenwick:
    """Fenwick (binary indexed) tree over n positions with +/-1 updates."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)
        self._n = n

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of positions [0, i]."""
        i += 1
        s = 0
        while i > 0:
            s += self._tree[i]
            i -= i & (-i)
        return int(s)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of positions [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def reuse_distances(blocks: np.ndarray) -> np.ndarray:
    """Per-access LRU reuse distances of a block-id stream.

    Returns an int64 array where entry *i* is the number of distinct blocks
    accessed strictly between access *i* and the previous access to the
    same block, or :data:`INFINITE_DISTANCE` for a first touch.
    """
    blocks = np.asarray(blocks)
    n = len(blocks)
    out = np.full(n, INFINITE_DISTANCE, dtype=np.int64)
    if n == 0:
        return out
    tree = _Fenwick(n)
    last_pos: Dict[int, int] = {}
    for i, b in enumerate(blocks.tolist()):
        prev = last_pos.get(b)
        if prev is not None:
            # Distinct blocks since prev = marked positions in (prev, i);
            # each block's marker sits at its most recent access position.
            out[i] = tree.range_sum(prev + 1, i - 1)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[b] = i
    return out
