"""2Q cache (Johnson & Shasha, VLDB'94), simplified two-queue variant.

New blocks enter a FIFO probation queue (A1in); a reference while in the
ghost queue (A1out) promotes the block into the main LRU queue (Am),
filtering one-touch scans out of the hot set.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import CachePolicy

__all__ = ["TwoQCache"]


class TwoQCache(CachePolicy):
    """2Q with the standard sizing heuristics (Kin = 25% of capacity,
    Kout = 50% of capacity)."""

    name = "2q"

    def __init__(self, capacity: int, in_fraction: float = 0.25, out_fraction: float = 0.5) -> None:
        super().__init__(capacity)
        if not 0 < in_fraction < 1:
            raise ValueError("in_fraction must be in (0, 1)")
        if out_fraction <= 0:
            raise ValueError("out_fraction must be positive")
        self._kin = max(1, int(capacity * in_fraction))
        self._kout = max(1, int(capacity * out_fraction))
        self._a1in: "OrderedDict[int, None]" = OrderedDict()  # probation FIFO
        self._a1out: "OrderedDict[int, None]" = OrderedDict()  # ghost FIFO
        self._am: "OrderedDict[int, None]" = OrderedDict()  # main LRU

    def _evict_for_admission(self) -> None:
        if len(self._a1in) >= self._kin:
            victim, _ = self._a1in.popitem(last=False)
            self._a1out[victim] = None
            if len(self._a1out) > self._kout:
                self._a1out.popitem(last=False)
        elif len(self._a1in) + len(self._am) >= self.capacity:
            if self._am:
                self._am.popitem(last=False)
            else:
                victim, _ = self._a1in.popitem(last=False)
                self._a1out[victim] = None
                if len(self._a1out) > self._kout:
                    self._a1out.popitem(last=False)

    def access(self, block: int, is_write: bool) -> bool:
        if block in self._am:
            self._am.move_to_end(block)
            return True
        if block in self._a1in:
            # 2Q leaves A1in blocks in place on re-reference.
            return True
        if block in self._a1out:
            del self._a1out[block]
            if len(self._a1in) + len(self._am) >= self.capacity:
                self._evict_for_admission()
            self._am[block] = None
            return False
        if len(self._a1in) + len(self._am) >= self.capacity or len(self._a1in) >= self._kin:
            self._evict_for_admission()
        self._a1in[block] = None
        return False

    def __contains__(self, block: int) -> bool:
        return block in self._a1in or block in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)

    def __iter__(self) -> Iterator[int]:
        yield from self._a1in
        yield from self._am

    def reset(self) -> None:
        self._a1in.clear()
        self._a1out.clear()
        self._am.clear()
