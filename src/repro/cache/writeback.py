"""Write-back cache simulation with dirty-block tracking.

The paper's cache-efficiency discussion (Findings 12-13) argues that
because written blocks are quickly rewritten (short WAW times) while the
next read is far away (long RAW times), a write-back cache can *absorb*
a large share of write traffic: an overwrite of a still-dirty block never
reaches primary storage.  Griffin [24] builds exactly this.  This module
simulates an LRU write-back cache and accounts:

* write absorption — overwrites of dirty resident blocks,
* destages — dirty evictions (writes that do reach primary storage),
* read hits/misses against the same unified cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


from ..trace.blocks import block_events
from ..trace.dataset import VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE

__all__ = ["WriteBackStats", "WriteBackCache", "simulate_writeback"]


@dataclass(frozen=True)
class WriteBackStats:
    """Accounting of one write-back simulation."""

    capacity_blocks: int
    n_reads: int
    n_writes: int
    read_hits: int
    #: writes that overwrote an already-dirty resident block
    absorbed_writes: int
    #: dirty blocks evicted (or flushed) to primary storage
    destages: int
    #: clean evictions (dropped without I/O)
    clean_evictions: int

    @property
    def write_absorption_ratio(self) -> float:
        """Fraction of writes that never reached primary storage as
        separate destages: 1 - destages/writes."""
        if self.n_writes == 0:
            return float("nan")
        return 1.0 - self.destages / self.n_writes

    @property
    def read_hit_ratio(self) -> float:
        if self.n_reads == 0:
            return float("nan")
        return self.read_hits / self.n_reads


class WriteBackCache:
    """LRU cache with dirty bits and explicit destage accounting.

    Reads admit clean blocks; writes admit (or re-dirty) blocks.  A dirty
    block evicted by LRU counts as one destage; overwriting a dirty block
    absorbs the earlier write entirely.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._resident: "OrderedDict[int, bool]" = OrderedDict()  # block -> dirty
        self.read_hits = 0
        self.n_reads = 0
        self.n_writes = 0
        self.absorbed_writes = 0
        self.destages = 0
        self.clean_evictions = 0

    def _evict_one(self) -> None:
        block, dirty = self._resident.popitem(last=False)
        if dirty:
            self.destages += 1
        else:
            self.clean_evictions += 1

    def read(self, block: int) -> bool:
        """Read one block; returns True on hit."""
        self.n_reads += 1
        if block in self._resident:
            self._resident.move_to_end(block)
            self.read_hits += 1
            return True
        if len(self._resident) >= self.capacity:
            self._evict_one()
        self._resident[block] = False
        return False

    def write(self, block: int) -> bool:
        """Write one block; returns True if the write was absorbed
        (the block was already dirty in cache)."""
        self.n_writes += 1
        dirty = self._resident.get(block)
        if dirty is not None:
            self._resident.move_to_end(block)
            self._resident[block] = True
            if dirty:
                self.absorbed_writes += 1
                return True
            return False
        if len(self._resident) >= self.capacity:
            self._evict_one()
        self._resident[block] = True
        return False

    def flush(self) -> int:
        """Destage all remaining dirty blocks; returns how many."""
        flushed = sum(1 for dirty in self._resident.values() if dirty)
        self.destages += flushed
        for block in list(self._resident):
            self._resident[block] = False
        return flushed

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, block: int) -> bool:
        return block in self._resident

    def dirty_count(self) -> int:
        return sum(1 for dirty in self._resident.values() if dirty)

    def stats(self) -> WriteBackStats:
        return WriteBackStats(
            capacity_blocks=self.capacity,
            n_reads=self.n_reads,
            n_writes=self.n_writes,
            read_hits=self.read_hits,
            absorbed_writes=self.absorbed_writes,
            destages=self.destages,
            clean_evictions=self.clean_evictions,
        )


def simulate_writeback(
    trace: VolumeTrace,
    capacity_blocks: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    flush_at_end: bool = True,
) -> WriteBackStats:
    """Run one volume's block accesses through a write-back cache.

    With ``flush_at_end`` the remaining dirty blocks are destaged, so the
    absorption ratio reflects steady-state behaviour rather than dirty
    data parked in cache.
    """
    ev = block_events(trace, block_size)
    cache = WriteBackCache(capacity_blocks)
    for block, is_write in zip(ev.block_id.tolist(), ev.is_write.tolist()):
        if is_write:
            cache.write(block)
        else:
            cache.read(block)
    if flush_at_end:
        cache.flush()
    return cache.stats()
