"""First-in-first-out cache (recency-oblivious baseline)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import CachePolicy

__all__ = ["FIFOCache"]


class FIFOCache(CachePolicy):
    """FIFO: hits do not reorder; misses admit at the tail and evict the
    oldest resident block when full."""

    name = "fifo"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def access(self, block: int, is_write: bool) -> bool:
        if block in self._resident:
            return True
        if len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
        self._resident[block] = None
        return False

    def __contains__(self, block: int) -> bool:
        return block in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def __iter__(self) -> Iterator[int]:
        """Oldest-to-newest order."""
        return iter(self._resident)

    def reset(self) -> None:
        self._resident.clear()
