"""Least-frequently-used cache with LRU tie-breaking.

Implemented with the O(1) frequency-list scheme: blocks live in per-
frequency ordered buckets; eviction takes the least recently used block of
the minimum frequency.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator

from .base import CachePolicy

__all__ = ["LFUCache"]


class LFUCache(CachePolicy):
    """LFU with LRU tie-break among equally-frequent blocks."""

    name = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq: Dict[int, int] = {}
        self._buckets: Dict[int, "OrderedDict[int, None]"] = {}
        self._min_freq = 0

    def _bump(self, block: int) -> None:
        f = self._freq[block]
        bucket = self._buckets[f]
        del bucket[block]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = f + 1
        self._freq[block] = f + 1
        self._buckets.setdefault(f + 1, OrderedDict())[block] = None

    def access(self, block: int, is_write: bool) -> bool:
        if block in self._freq:
            self._bump(block)
            return True
        if len(self._freq) >= self.capacity:
            victim_bucket = self._buckets[self._min_freq]
            victim, _ = victim_bucket.popitem(last=False)
            if not victim_bucket:
                del self._buckets[self._min_freq]
            del self._freq[victim]
        self._freq[block] = 1
        self._buckets.setdefault(1, OrderedDict())[block] = None
        self._min_freq = 1
        return False

    def frequency(self, block: int) -> int:
        """Current access count of a resident block (0 if absent)."""
        return self._freq.get(block, 0)

    def __contains__(self, block: int) -> bool:
        return block in self._freq

    def __len__(self) -> int:
        return len(self._freq)

    def __iter__(self) -> Iterator[int]:
        return iter(self._freq)

    def reset(self) -> None:
        self._freq.clear()
        self._buckets.clear()
        self._min_freq = 0
