"""Block cache simulation: policies, trace-driven simulator, MRC tools."""

from .admission import BlockTypeTracker, TypeAwareAdmissionCache
from .arc import ARCCache
from .base import CachePolicy
from .clock import ClockCache
from .fifo import FIFOCache
from .lfu import LFUCache
from .lru import LRUCache
from .mrc import MissRatioCurve, mrc_from_distances, mrc_from_stream
from .reuse import INFINITE_DISTANCE, reuse_distances
from .shards import shards_mrc, shards_sample_mask
from .simulator import CacheSimResult, simulate_stream, simulate_trace
from .twoq import TwoQCache
from .writeback import WriteBackCache, WriteBackStats, simulate_writeback

#: Registry of available policy classes by name.
POLICIES = {
    cls.name: cls
    for cls in (LRUCache, FIFOCache, LFUCache, ClockCache, ARCCache, TwoQCache)
}

__all__ = [
    "CachePolicy",
    "LRUCache",
    "FIFOCache",
    "LFUCache",
    "ClockCache",
    "ARCCache",
    "TwoQCache",
    "POLICIES",
    "CacheSimResult",
    "simulate_trace",
    "simulate_stream",
    "reuse_distances",
    "INFINITE_DISTANCE",
    "MissRatioCurve",
    "mrc_from_distances",
    "mrc_from_stream",
    "shards_mrc",
    "shards_sample_mask",
    "WriteBackCache",
    "WriteBackStats",
    "simulate_writeback",
    "BlockTypeTracker",
    "TypeAwareAdmissionCache",
]
