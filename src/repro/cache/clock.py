"""CLOCK (second-chance) cache, the classic LRU approximation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .base import CachePolicy

__all__ = ["ClockCache"]


class ClockCache(CachePolicy):
    """CLOCK: resident blocks sit on a circular buffer with a reference
    bit; hits set the bit; eviction sweeps the hand, clearing bits until it
    finds an unreferenced victim."""

    name = "clock"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._slots: List[Optional[int]] = [None] * capacity
        self._referenced: List[bool] = [False] * capacity
        self._slot_of: Dict[int, int] = {}
        self._hand = 0

    def access(self, block: int, is_write: bool) -> bool:
        slot = self._slot_of.get(block)
        if slot is not None:
            self._referenced[slot] = True
            return True
        # Find a victim slot: advance the hand past referenced entries,
        # clearing their bits (second chance).
        while True:
            if self._slots[self._hand] is None:
                break
            if not self._referenced[self._hand]:
                break
            self._referenced[self._hand] = False
            self._hand = (self._hand + 1) % self.capacity
        victim = self._slots[self._hand]
        if victim is not None:
            del self._slot_of[victim]
        self._slots[self._hand] = block
        self._referenced[self._hand] = False
        self._slot_of[block] = self._hand
        self._hand = (self._hand + 1) % self.capacity
        return False

    def __contains__(self, block: int) -> bool:
        return block in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self) -> Iterator[int]:
        return iter(self._slot_of)

    def reset(self) -> None:
        self._slots = [None] * self.capacity
        self._referenced = [False] * self.capacity
        self._slot_of.clear()
        self._hand = 0
