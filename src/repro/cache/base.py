"""Cache policy interface.

Policies operate at block granularity over integer block ids.  A policy
owns only replacement decisions; hit/miss accounting and trace driving live
in :mod:`repro.cache.simulator`.
"""

from __future__ import annotations

import abc
from typing import Iterator

__all__ = ["CachePolicy"]


class CachePolicy(abc.ABC):
    """A fixed-capacity block cache replacement policy.

    Args:
        capacity: maximum number of blocks resident at once (> 0).
    """

    name: str = "base"

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity

    @abc.abstractmethod
    def access(self, block: int, is_write: bool) -> bool:
        """Access a block; returns True on hit, False on miss.

        On a miss the policy admits the block (all paper experiments use a
        unified read+write cache with admit-on-miss), evicting per its
        replacement rule when full.
        """

    @abc.abstractmethod
    def __contains__(self, block: int) -> bool:
        """Whether the block is currently resident (no side effects)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident blocks."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[int]:
        """Iterate over resident block ids (order is policy-specific)."""

    def reset(self) -> None:
        """Drop all resident blocks (default: re-init via subclass)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(capacity={self.capacity}, resident={len(self)})"
