"""Least-recently-used cache (the paper's Finding 15 policy)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import CachePolicy

__all__ = ["LRUCache"]


class LRUCache(CachePolicy):
    """Classic LRU: hits move the block to the MRU end; misses admit at the
    MRU end and evict from the LRU end when full."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def access(self, block: int, is_write: bool) -> bool:
        if block in self._resident:
            self._resident.move_to_end(block)
            return True
        if len(self._resident) >= self.capacity:
            self._resident.popitem(last=False)
        self._resident[block] = None
        return False

    def __contains__(self, block: int) -> bool:
        return block in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def __iter__(self) -> Iterator[int]:
        """LRU-to-MRU order."""
        return iter(self._resident)

    def reset(self) -> None:
        self._resident.clear()
