"""Trace-driven cache simulation.

Drives a volume's block-level access stream through a
:class:`~repro.cache.base.CachePolicy` and accounts hits and misses
separately for reads and writes, matching the paper's Finding 15 setup
(unified read+write cache, per-op miss ratios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs import metrics
from ..obs.tracing import span
from ..trace.blocks import block_events
from ..trace.dataset import VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE
from .base import CachePolicy

__all__ = ["CacheSimResult", "simulate_trace", "simulate_stream"]


@dataclass(frozen=True)
class CacheSimResult:
    """Hit/miss accounting of one simulation run."""

    policy: str
    capacity_blocks: int
    read_hits: int
    read_misses: int
    write_hits: int
    write_misses: int

    @property
    def n_reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def n_writes(self) -> int:
        return self.write_hits + self.write_misses

    @property
    def n_accesses(self) -> int:
        return self.n_reads + self.n_writes

    @property
    def read_miss_ratio(self) -> float:
        return self.read_misses / self.n_reads if self.n_reads else float("nan")

    @property
    def write_miss_ratio(self) -> float:
        return self.write_misses / self.n_writes if self.n_writes else float("nan")

    @property
    def miss_ratio(self) -> float:
        total = self.n_accesses
        return (self.read_misses + self.write_misses) / total if total else float("nan")

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio


def simulate_stream(
    blocks: np.ndarray, is_write: np.ndarray, policy: CachePolicy
) -> CacheSimResult:
    """Run a (block id, op) access stream through a policy instance.

    Hit/miss/eviction totals accumulate into the current metrics registry
    (``cache.hits`` / ``cache.misses`` / ``cache.evictions``).  Evictions
    are inferred as misses minus cache growth — exact for admit-on-miss
    policies, an upper bound when an admission filter rejects blocks.
    """
    read_hits = read_misses = write_hits = write_misses = 0
    resident_before = len(policy)
    access = policy.access
    with span("cache_simulate"):
        for block, w in zip(blocks.tolist(), is_write.tolist()):
            hit = access(block, w)
            if w:
                if hit:
                    write_hits += 1
                else:
                    write_misses += 1
            else:
                if hit:
                    read_hits += 1
                else:
                    read_misses += 1
    reg = metrics.get_registry()
    misses = read_misses + write_misses
    reg.counter("cache.accesses").inc(len(blocks))
    reg.counter("cache.hits").inc(read_hits + write_hits)
    reg.counter("cache.misses").inc(misses)
    reg.counter("cache.evictions").inc(
        max(0, misses - (len(policy) - resident_before))
    )
    return CacheSimResult(
        policy=policy.name,
        capacity_blocks=policy.capacity,
        read_hits=read_hits,
        read_misses=read_misses,
        write_hits=write_hits,
        write_misses=write_misses,
    )


def simulate_trace(
    trace: VolumeTrace,
    policy_factory: Callable[[int], CachePolicy],
    capacity_blocks: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CacheSimResult:
    """Simulate a fresh cache over one volume's block access stream.

    The trace is expanded to per-block accesses in arrival order (a request
    spanning k blocks produces k accesses); the policy starts cold.
    """
    ev = block_events(trace, block_size)
    policy = policy_factory(capacity_blocks)
    return simulate_stream(ev.block_id, ev.is_write, policy)
