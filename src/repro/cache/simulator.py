"""Trace-driven cache simulation.

Drives a volume's block-level access stream through a
:class:`~repro.cache.base.CachePolicy` and accounts hits and misses
separately for reads and writes, matching the paper's Finding 15 setup
(unified read+write cache, per-op miss ratios).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type

import numpy as np

from ..trace.blocks import block_events
from ..trace.dataset import VolumeTrace
from ..trace.record import DEFAULT_BLOCK_SIZE
from .base import CachePolicy

__all__ = ["CacheSimResult", "simulate_trace", "simulate_stream"]


@dataclass(frozen=True)
class CacheSimResult:
    """Hit/miss accounting of one simulation run."""

    policy: str
    capacity_blocks: int
    read_hits: int
    read_misses: int
    write_hits: int
    write_misses: int

    @property
    def n_reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def n_writes(self) -> int:
        return self.write_hits + self.write_misses

    @property
    def n_accesses(self) -> int:
        return self.n_reads + self.n_writes

    @property
    def read_miss_ratio(self) -> float:
        return self.read_misses / self.n_reads if self.n_reads else float("nan")

    @property
    def write_miss_ratio(self) -> float:
        return self.write_misses / self.n_writes if self.n_writes else float("nan")

    @property
    def miss_ratio(self) -> float:
        total = self.n_accesses
        return (self.read_misses + self.write_misses) / total if total else float("nan")

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio


def simulate_stream(
    blocks: np.ndarray, is_write: np.ndarray, policy: CachePolicy
) -> CacheSimResult:
    """Run a (block id, op) access stream through a policy instance."""
    read_hits = read_misses = write_hits = write_misses = 0
    access = policy.access
    for block, w in zip(blocks.tolist(), is_write.tolist()):
        hit = access(block, w)
        if w:
            if hit:
                write_hits += 1
            else:
                write_misses += 1
        else:
            if hit:
                read_hits += 1
            else:
                read_misses += 1
    return CacheSimResult(
        policy=policy.name,
        capacity_blocks=policy.capacity,
        read_hits=read_hits,
        read_misses=read_misses,
        write_hits=write_hits,
        write_misses=write_misses,
    )


def simulate_trace(
    trace: VolumeTrace,
    policy_factory: Callable[[int], CachePolicy],
    capacity_blocks: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> CacheSimResult:
    """Simulate a fresh cache over one volume's block access stream.

    The trace is expanded to per-block accesses in arrival order (a request
    spanning k blocks produces k accesses); the policy starts cold.
    """
    ev = block_events(trace, block_size)
    policy = policy_factory(capacity_blocks)
    return simulate_stream(ev.block_id, ev.is_write, policy)
