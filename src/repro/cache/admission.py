"""Type-aware cache admission (the paper's Finding 10 implication).

Finding 10 observes that read and write traffic aggregate in read-mostly
and write-mostly blocks; Section V proposes admitting blocks to caches by
their observed type, as ACGR [14] regulates flash accesses.  This module
implements that policy: an online classifier tracks each block's
read/write counts, and a read cache admits only blocks that look
read-mostly (mutatis mutandis for a write cache), protecting the cache
from blocks whose traffic it cannot serve.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

from .base import CachePolicy
from .lru import LRUCache

__all__ = ["BlockTypeTracker", "TypeAwareAdmissionCache"]


class BlockTypeTracker:
    """Bounded-memory per-block read/write counters with LRU eviction.

    Tracks up to ``capacity`` blocks; classification needs at least
    ``min_observations`` accesses, otherwise a block is "unknown".
    """

    def __init__(self, capacity: int = 1 << 16, min_observations: int = 3) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self.capacity = capacity
        self.min_observations = min_observations
        self._counts: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()

    def observe(self, block: int, is_write: bool) -> None:
        reads, writes = self._counts.pop(block, (0, 0))
        if is_write:
            writes += 1
        else:
            reads += 1
        self._counts[block] = (reads, writes)
        if len(self._counts) > self.capacity:
            self._counts.popitem(last=False)

    def classify(self, block: int, threshold: float = 0.95) -> str:
        """``"read-mostly"``, ``"write-mostly"``, ``"mixed"``, or
        ``"unknown"`` (not enough observations)."""
        reads, writes = self._counts.get(block, (0, 0))
        total = reads + writes
        if total < self.min_observations:
            return "unknown"
        if reads >= threshold * total:
            return "read-mostly"
        if writes >= threshold * total:
            return "write-mostly"
        return "mixed"

    def __len__(self) -> int:
        return len(self._counts)


class TypeAwareAdmissionCache(CachePolicy):
    """LRU cache that admits blocks only when their observed type matches.

    Args:
        capacity: resident blocks.
        serve: ``"read"`` — admit read-mostly (and unknown) blocks on
            reads only; ``"write"`` — admit write-mostly (and unknown)
            blocks on writes only.
        threshold: the read-/write-mostly classification threshold
            (paper: 95%).
        admit_unknown: whether unclassified blocks may enter (default
            True: behave like LRU until evidence accumulates).
    """

    name = "type-aware"

    def __init__(
        self,
        capacity: int,
        serve: str = "read",
        threshold: float = 0.95,
        tracker: BlockTypeTracker = None,
        admit_unknown: bool = True,
    ) -> None:
        super().__init__(capacity)
        if serve not in ("read", "write"):
            raise ValueError("serve must be 'read' or 'write'")
        if not 0.5 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0.5, 1]")
        self.serve = serve
        self.threshold = threshold
        self.admit_unknown = admit_unknown
        self.tracker = tracker or BlockTypeTracker()
        self._lru = LRUCache(capacity)
        self.rejected_admissions = 0

    def _admissible(self, block: int, is_write: bool) -> bool:
        # Only the matching op type can admit.
        if is_write != (self.serve == "write"):
            return False
        kind = self.tracker.classify(block, self.threshold)
        if kind == "unknown":
            return self.admit_unknown
        return kind == f"{self.serve}-mostly"

    def access(self, block: int, is_write: bool) -> bool:
        self.tracker.observe(block, is_write)
        if block in self._lru:
            return self._lru.access(block, is_write)
        if self._admissible(block, is_write):
            self._lru.access(block, is_write)
        else:
            self.rejected_admissions += 1
        return False

    def __contains__(self, block: int) -> bool:
        return block in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    def __iter__(self) -> Iterator[int]:
        return iter(self._lru)

    def reset(self) -> None:
        self._lru.reset()
        self.rejected_admissions = 0
