"""Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

ARC balances recency (T1) against frequency (T2) using ghost lists (B1,
B2) to adapt the split point ``p`` online.  Included as the adaptive
baseline for the cache-policy ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from .base import CachePolicy

__all__ = ["ARCCache"]


class ARCCache(CachePolicy):
    """Standard ARC over block ids."""

    name = "arc"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._p = 0.0  # target size of T1
        self._t1: "OrderedDict[int, None]" = OrderedDict()  # recent, seen once
        self._t2: "OrderedDict[int, None]" = OrderedDict()  # frequent
        self._b1: "OrderedDict[int, None]" = OrderedDict()  # ghost of T1
        self._b2: "OrderedDict[int, None]" = OrderedDict()  # ghost of T2

    def _replace(self, in_b2: bool) -> None:
        """Evict from T1 or T2 into the matching ghost list."""
        t1_len = len(self._t1)
        if t1_len and (t1_len > self._p or (in_b2 and t1_len == int(self._p))):
            victim, _ = self._t1.popitem(last=False)
            self._b1[victim] = None
        else:
            victim, _ = self._t2.popitem(last=False)
            self._b2[victim] = None

    def access(self, block: int, is_write: bool) -> bool:
        # Case I: hit in T1 or T2 -> promote to MRU of T2.
        if block in self._t1:
            del self._t1[block]
            self._t2[block] = None
            return True
        if block in self._t2:
            self._t2.move_to_end(block)
            return True
        # Case II: ghost hit in B1 -> grow p, bring into T2.
        if block in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self._p = min(float(self.capacity), self._p + delta)
            self._replace(in_b2=False)
            del self._b1[block]
            self._t2[block] = None
            return False
        # Case III: ghost hit in B2 -> shrink p, bring into T2.
        if block in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self._p = max(0.0, self._p - delta)
            self._replace(in_b2=True)
            del self._b2[block]
            self._t2[block] = None
            return False
        # Case IV: full miss.
        c = self.capacity
        l1 = len(self._t1) + len(self._b1)
        if l1 == c:
            if len(self._t1) < c:
                self._b1.popitem(last=False)
                self._replace(in_b2=False)
            else:
                self._t1.popitem(last=False)
        else:
            total = l1 + len(self._t2) + len(self._b2)
            if total >= c:
                if total == 2 * c:
                    self._b2.popitem(last=False)
                self._replace(in_b2=False)
        self._t1[block] = None
        return False

    def __contains__(self, block: int) -> bool:
        return block in self._t1 or block in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __iter__(self) -> Iterator[int]:
        yield from self._t1
        yield from self._t2

    @property
    def p(self) -> float:
        """Current adaptive target size of the recency list T1."""
        return self._p

    def reset(self) -> None:
        self._p = 0.0
        for lst in (self._t1, self._t2, self._b1, self._b2):
            lst.clear()
